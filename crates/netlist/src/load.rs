//! The unified model-loading front door.
//!
//! The crate historically exposed three parsers with three error types
//! (`parse_bench`, `parse_aiger`, `parse_aiger_binary`) that every CLI
//! re-glued by hand with its own format sniffing. [`load_model`] /
//! [`load_model_bytes`] centralize that: the format is detected from
//! the content magic first (`aig ` → binary AIGER, `aag ` → ASCII
//! AIGER), then from the file extension (`.aig` / `.aag`), and
//! ISCAS'89 `.bench` — which has no magic — is the fallback for
//! everything else. Errors come back as one [`ParseError`] enum that
//! wraps the three existing error types, which stay exported for
//! compatibility.

use crate::aiger::{parse_aiger, parse_aiger_binary, ParseAigerBinError, ParseAigerError};
use crate::bench_format::{parse_bench, ParseBenchError};
use crate::Aig;
use std::fmt;
use std::path::Path;

/// Any error from the unified loader: one of the three format parsers
/// failed, the bytes were not text where text was required, or (for
/// [`load_model`]) the file could not be read at all.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseError {
    /// ISCAS'89 `.bench` parse failure.
    Bench(ParseBenchError),
    /// ASCII AIGER (`aag`) parse failure.
    Aiger(ParseAigerError),
    /// Binary AIGER (`aig`) parse failure.
    AigerBin(ParseAigerBinError),
    /// The detected format is text-based but the bytes are not UTF-8.
    NotUtf8 {
        /// The model name or path the bytes came from.
        name: String,
    },
    /// The file could not be read ([`load_model`] only).
    Io {
        /// The path that failed to read.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Bench(e) => e.fmt(f),
            ParseError::Aiger(e) => e.fmt(f),
            ParseError::AigerBin(e) => e.fmt(f),
            ParseError::NotUtf8 { name } => {
                write!(f, "{name}: not UTF-8 text (and no binary AIGER magic)")
            }
            ParseError::Io { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Bench(e) => Some(e),
            ParseError::Aiger(e) => Some(e),
            ParseError::AigerBin(e) => Some(e),
            ParseError::NotUtf8 { .. } => None,
            ParseError::Io { source, .. } => Some(source),
        }
    }
}

impl From<ParseBenchError> for ParseError {
    fn from(e: ParseBenchError) -> ParseError {
        ParseError::Bench(e)
    }
}

impl From<ParseAigerError> for ParseError {
    fn from(e: ParseAigerError) -> ParseError {
        ParseError::Aiger(e)
    }
}

impl From<ParseAigerBinError> for ParseError {
    fn from(e: ParseAigerBinError) -> ParseError {
        ParseError::AigerBin(e)
    }
}

/// The circuit format [`load_model_bytes`] decided to parse as.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Format {
    Bench,
    AigerAscii,
    AigerBinary,
}

/// Format detection: content magic wins, then the extension, then
/// `.bench` (which has no magic) as the fallback.
fn detect(name: &str, bytes: &[u8]) -> Format {
    if bytes.starts_with(b"aig ") {
        return Format::AigerBinary;
    }
    if bytes.starts_with(b"aag ") {
        return Format::AigerAscii;
    }
    match Path::new(name).extension().and_then(|e| e.to_str()) {
        Some("aig") => Format::AigerBinary,
        Some("aag") => Format::AigerAscii,
        _ => Format::Bench,
    }
}

/// Parses a circuit from raw bytes, auto-detecting ISCAS'89 `.bench`,
/// ASCII AIGER (`aag`) or binary AIGER (`aig`) — by content magic
/// first, then by the extension of `name`. `name` is only used for
/// detection and error messages; it does not have to be a real path.
///
/// # Errors
///
/// Returns the wrapped parser error for the detected format, or
/// [`ParseError::NotUtf8`] when a text format was detected but the
/// bytes are not UTF-8.
///
/// # Examples
///
/// ```
/// use sec_netlist::load_model_bytes;
/// let aig = load_model_bytes("t.bench", b"INPUT(a)\nOUTPUT(a)\n").unwrap();
/// assert_eq!(aig.num_inputs(), 1);
/// let same = load_model_bytes("t.aag", b"aag 1 1 0 1 0\n2\n2\n").unwrap();
/// assert_eq!(same.num_inputs(), 1);
/// ```
pub fn load_model_bytes(name: &str, bytes: &[u8]) -> Result<Aig, ParseError> {
    let format = detect(name, bytes);
    if format == Format::AigerBinary {
        return Ok(parse_aiger_binary(bytes)?);
    }
    let text = std::str::from_utf8(bytes).map_err(|_| ParseError::NotUtf8 {
        name: name.to_string(),
    })?;
    match format {
        Format::AigerAscii => Ok(parse_aiger(text)?),
        Format::Bench => Ok(parse_bench(text)?),
        Format::AigerBinary => unreachable!("handled above"),
    }
}

/// Reads and parses a circuit file, auto-detecting the format like
/// [`load_model_bytes`].
///
/// # Errors
///
/// [`ParseError::Io`] when the file cannot be read, otherwise as
/// [`load_model_bytes`].
pub fn load_model(path: impl AsRef<Path>) -> Result<Aig, ParseError> {
    let path = path.as_ref();
    let name = path.to_string_lossy().into_owned();
    let bytes = std::fs::read(path).map_err(|source| ParseError::Io {
        path: name.clone(),
        source,
    })?;
    load_model_bytes(&name, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aiger::{write_aiger, write_aiger_binary};
    use crate::structural_fingerprint;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let l = aig.add_latch(true);
        let g = aig.and(a, !l.lit());
        aig.set_latch_next(l, g);
        aig.add_output(g, "out");
        aig
    }

    #[test]
    fn magic_beats_extension() {
        let aig = sample();
        let bin = write_aiger_binary(&aig);
        let ascii = write_aiger(&aig);
        // Binary bytes under a .bench name: magic wins.
        let via_bin = load_model_bytes("mislabeled.bench", &bin).unwrap();
        let via_ascii = load_model_bytes("mislabeled.bench", ascii.as_bytes()).unwrap();
        assert_eq!(
            structural_fingerprint(&via_bin),
            structural_fingerprint(&via_ascii)
        );
    }

    #[test]
    fn extension_decides_without_magic() {
        // No magic, .bench extension (and unknown extensions) → bench.
        assert!(load_model_bytes("x.bench", b"INPUT(a)\nOUTPUT(a)\n").is_ok());
        assert!(load_model_bytes("x", b"INPUT(a)\nOUTPUT(a)\n").is_ok());
        // A headerless .aag file is an AIGER parse error, not a bench one.
        let err = load_model_bytes("x.aag", b"INPUT(a)\n").unwrap_err();
        assert!(matches!(err, ParseError::Aiger(_)), "{err}");
        let err = load_model_bytes("x.aig", b"\x00\x01\x02").unwrap_err();
        assert!(matches!(err, ParseError::AigerBin(_)), "{err}");
    }

    #[test]
    fn non_utf8_text_is_a_typed_error() {
        let err = load_model_bytes("x.bench", b"INPUT(\xff)\n").unwrap_err();
        assert!(matches!(err, ParseError::NotUtf8 { .. }), "{err}");
        assert!(err.to_string().contains("x.bench"));
    }

    #[test]
    fn load_model_reads_files_and_reports_io_errors() {
        let dir = std::env::temp_dir().join(format!("sec-load-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let aig = sample();
        let p = dir.join("m.aig");
        std::fs::write(&p, write_aiger_binary(&aig)).unwrap();
        let back = load_model(&p).unwrap();
        assert_eq!(structural_fingerprint(&back), structural_fingerprint(&aig));
        let err = load_model(dir.join("missing.bench")).unwrap_err();
        assert!(matches!(err, ParseError::Io { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
