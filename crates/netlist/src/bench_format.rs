//! Reader and writer for the ISCAS'89 `.bench` netlist format.
//!
//! This is the format the original experiments' circuits (s208, s298, …)
//! are distributed in, so real ISCAS benchmarks can be dropped into the
//! harness. Gate types: `AND`, `OR`, `NAND`, `NOR`, `XOR`, `XNOR`, `NOT`,
//! `BUFF` and `DFF`. Multi-input gates are decomposed into balanced trees
//! of two-input ANDs.
//!
//! Flip-flops initialize to `0` unless a `#init <name> 1` directive is
//! present (an extension emitted by [`write_bench`] so that round trips
//! preserve initial values).

use crate::{Aig, Lit, Var};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// An error produced while parsing a `.bench` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBenchError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bench parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseBenchError {}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum GateKind {
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    Not,
    Buff,
    Dff,
}

impl GateKind {
    fn parse(s: &str) -> Option<GateKind> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Some(GateKind::And),
            "OR" => Some(GateKind::Or),
            "NAND" => Some(GateKind::Nand),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            "NOT" => Some(GateKind::Not),
            "BUFF" | "BUF" => Some(GateKind::Buff),
            "DFF" => Some(GateKind::Dff),
            _ => None,
        }
    }
}

struct Def {
    kind: GateKind,
    args: Vec<String>,
    line: usize,
}

/// Parses a circuit in ISCAS'89 `.bench` format.
///
/// # Errors
///
/// Returns a [`ParseBenchError`] on malformed lines, unknown gate types,
/// undefined signals or combinational cycles.
///
/// # Examples
///
/// ```
/// use sec_netlist::parse_bench;
/// let aig = parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nq = DFF(f)\nf = AND(a, b)\n",
/// )?;
/// assert_eq!(aig.num_inputs(), 2);
/// assert_eq!(aig.num_latches(), 1);
/// # Ok::<(), sec_netlist::ParseBenchError>(())
/// ```
pub fn parse_bench(text: &str) -> Result<Aig, ParseBenchError> {
    let mut inputs: Vec<(String, usize)> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut defs: HashMap<String, Def> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut init_ones: Vec<String> = Vec::new();

    let err = |line: usize, message: &str| ParseBenchError {
        line,
        message: message.to_string(),
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if let Some(rest) = trimmed.strip_prefix("#init") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| err(line, "missing name in #init directive"))?;
            let value = it
                .next()
                .ok_or_else(|| err(line, "missing value in #init directive"))?;
            if value == "1" {
                init_ones.push(name.to_string());
            }
            continue;
        }
        let content = match trimmed.find('#') {
            Some(pos) => trimmed[..pos].trim(),
            None => trimmed,
        };
        if content.is_empty() {
            continue;
        }
        let parse_call = |s: &str| -> Option<(String, Vec<String>)> {
            let open = s.find('(')?;
            let close = s.rfind(')')?;
            if close < open {
                return None;
            }
            let head = s[..open].trim().to_string();
            let args = s[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            Some((head, args))
        };
        if let Some(eq) = content.find('=') {
            let name = content[..eq].trim().to_string();
            let rhs = content[eq + 1..].trim();
            let (head, args) =
                parse_call(rhs).ok_or_else(|| err(line, "malformed gate definition"))?;
            let kind = GateKind::parse(&head)
                .ok_or_else(|| err(line, &format!("unknown gate type `{head}`")))?;
            if args.is_empty() {
                return Err(err(line, "gate with no operands"));
            }
            match kind {
                GateKind::Not | GateKind::Buff | GateKind::Dff if args.len() != 1 => {
                    return Err(err(line, &format!("{head} takes exactly one operand")));
                }
                _ => {}
            }
            if defs
                .insert(name.clone(), Def { kind, args, line })
                .is_some()
            {
                return Err(err(line, &format!("signal `{name}` defined twice")));
            }
            order.push(name);
        } else {
            let (head, args) =
                parse_call(content).ok_or_else(|| err(line, "malformed declaration"))?;
            if args.len() != 1 {
                return Err(err(line, "INPUT/OUTPUT take exactly one name"));
            }
            match head.to_ascii_uppercase().as_str() {
                "INPUT" => inputs.push((args[0].clone(), line)),
                "OUTPUT" => outputs.push((args[0].clone(), line)),
                _ => return Err(err(line, &format!("unknown declaration `{head}`"))),
            }
        }
    }

    let mut aig = Aig::new();
    let mut resolved: HashMap<String, Lit> = HashMap::new();
    for (name, line) in &inputs {
        if resolved.contains_key(name) {
            return Err(err(*line, &format!("input `{name}` declared twice")));
        }
        let v = aig.add_input(name.clone());
        resolved.insert(name.clone(), v.lit());
    }
    // Create latches up front so feedback through registers resolves.
    let mut latch_of: HashMap<String, Var> = HashMap::new();
    for name in &order {
        let def = &defs[name];
        if def.kind == GateKind::Dff {
            if resolved.contains_key(name) {
                return Err(err(def.line, &format!("signal `{name}` already defined")));
            }
            let init = init_ones.iter().any(|n| n == name);
            let v = aig.add_latch(init);
            aig.set_name(v, name.clone());
            resolved.insert(name.clone(), v.lit());
            latch_of.insert(name.clone(), v);
        }
    }

    // Iterative DFS resolution of combinational definitions.
    fn resolve(
        name: &str,
        at_line: usize,
        defs: &HashMap<String, Def>,
        resolved: &mut HashMap<String, Lit>,
        visiting: &mut Vec<String>,
        aig: &mut Aig,
    ) -> Result<Lit, ParseBenchError> {
        if let Some(&l) = resolved.get(name) {
            return Ok(l);
        }
        if visiting.iter().any(|n| n == name) {
            return Err(ParseBenchError {
                line: at_line,
                message: format!("combinational cycle through `{name}`"),
            });
        }
        let def = defs.get(name).ok_or_else(|| ParseBenchError {
            line: at_line,
            message: format!("undefined signal `{name}`"),
        })?;
        visiting.push(name.to_string());
        let mut args = Vec::with_capacity(def.args.len());
        for a in &def.args {
            args.push(resolve(a, def.line, defs, resolved, visiting, aig)?);
        }
        visiting.pop();
        let lit = match def.kind {
            GateKind::And => aig.and_many(&args),
            GateKind::Nand => !aig.and_many(&args),
            GateKind::Or => aig.or_many(&args),
            GateKind::Nor => !aig.or_many(&args),
            GateKind::Xor => args[1..].iter().fold(args[0], |acc, &a| aig.xor(acc, a)),
            GateKind::Xnor => {
                let x = args[1..].iter().fold(args[0], |acc, &a| aig.xor(acc, a));
                !x
            }
            GateKind::Not => !args[0],
            GateKind::Buff => args[0],
            GateKind::Dff => unreachable!("DFFs are pre-resolved"),
        };
        if !lit.is_const() && aig.name(lit.var()).is_none() && !lit.is_complemented() {
            aig.set_name(lit.var(), name.to_string());
        }
        resolved.insert(name.to_string(), lit);
        Ok(lit)
    }

    let mut visiting = Vec::new();
    for name in &order {
        let line = defs[name].line;
        if let Some(&latch) = latch_of.get(name) {
            let d = defs[name].args[0].clone();
            let lit = resolve(&d, line, &defs, &mut resolved, &mut visiting, &mut aig)?;
            aig.set_latch_next(latch, lit);
        } else {
            resolve(name, line, &defs, &mut resolved, &mut visiting, &mut aig)?;
        }
    }
    for (name, line) in &outputs {
        let lit = resolve(name, *line, &defs, &mut resolved, &mut visiting, &mut aig)?;
        aig.add_output(lit, name.clone());
    }
    Ok(aig)
}

/// Writes a circuit in ISCAS'89 `.bench` format.
///
/// Latches with initial value 1 are recorded with `#init <name> 1`
/// directives understood by [`parse_bench`]. A constant-false signal, if
/// referenced, is expressed as `XOR(x, x)` of the first input (an input
/// named `__const_seed` is created when the circuit has none).
pub fn write_bench(aig: &Aig) -> String {
    let mut out = String::new();
    // Symbol names first, then index-derived fallbacks for the rest —
    // steered around the taken set, since a circuit is free to call a
    // signal `n16` while node 16 is a different, unnamed one.
    let mut taken: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut names: Vec<String> = vec![String::new(); aig.num_nodes()];
    for v in aig.vars() {
        if let Some(n) = aig.name(v) {
            if v != Var::CONST {
                names[v.index()] = n.to_string();
                taken.insert(n.to_string());
            }
        }
    }
    for (i, name) in names.iter_mut().enumerate() {
        if name.is_empty() {
            let mut candidate = format!("n{i}");
            while taken.contains(&candidate) {
                candidate.push('_');
            }
            taken.insert(candidate.clone());
            *name = candidate;
        }
    }
    for &i in aig.inputs() {
        let _ = writeln!(out, "INPUT({})", names[i.index()]);
    }
    let mut const_needed = false;
    let uses_const = |l: Lit| l.is_const();
    for &l in aig.latches() {
        if aig.latch_next(l).map(uses_const).unwrap_or(false) {
            const_needed = true;
        }
    }
    for o in aig.outputs() {
        if uses_const(o.lit) {
            const_needed = true;
        }
    }
    for v in aig.and_vars() {
        let (a, b) = aig.and_fanins(v);
        if uses_const(a) || uses_const(b) {
            const_needed = true;
        }
    }

    let mut body = String::new();
    let mut inverted: Vec<bool> = vec![false; aig.num_nodes()];
    let mut const_seed_line = String::new();
    if const_needed {
        // `x XOR x` expresses constant 0 from any existing signal; only a
        // completely empty circuit needs a dummy input.
        let seed = match aig.inputs().first().or_else(|| aig.latches().first()) {
            Some(&v) => names[v.index()].clone(),
            None => {
                let _ = writeln!(out, "INPUT(__const_seed)");
                "__const_seed".to_string()
            }
        };
        let _ = writeln!(const_seed_line, "__const0 = XOR({seed}, {seed})");
        let _ = writeln!(const_seed_line, "__const1 = NOT(__const0)");
    }

    // Returns the signal name for a literal, creating `NOT` aliases lazily.
    let refname = |l: Lit, body: &mut String, inverted: &mut Vec<bool>| -> String {
        if l == Lit::FALSE {
            return "__const0".to_string();
        }
        if l == Lit::TRUE {
            return "__const1".to_string();
        }
        let base = names[l.var().index()].clone();
        if !l.is_complemented() {
            base
        } else {
            if !inverted[l.var().index()] {
                let _ = writeln!(body, "{base}__not = NOT({base})");
                inverted[l.var().index()] = true;
            }
            format!("{base}__not")
        }
    };

    let used_names: std::collections::HashSet<&str> = names.iter().map(|s| s.as_str()).collect();
    let mut output_lines = Vec::new();
    for (i, o) in aig.outputs().iter().enumerate() {
        let oname = o.name.clone().unwrap_or_else(|| format!("po{i}"));
        // When the port name is exactly the (positive) driving signal, the
        // signal's own definition serves as the output; otherwise emit a
        // BUFF under a non-clashing port name.
        if !o.lit.is_complemented() && !o.lit.is_const() && names[o.lit.var().index()] == oname {
            let _ = writeln!(out, "OUTPUT({oname})");
            continue;
        }
        let port = if used_names.contains(oname.as_str()) {
            format!("{oname}__po")
        } else {
            oname
        };
        let _ = writeln!(out, "OUTPUT({port})");
        let sig = refname(o.lit, &mut body, &mut inverted);
        output_lines.push(format!("{port} = BUFF({sig})"));
    }
    for &l in aig.latches() {
        let d = aig
            .latch_next(l)
            .expect("write_bench requires fully driven latches");
        let sig = refname(d, &mut body, &mut inverted);
        let _ = writeln!(body, "{} = DFF({sig})", names[l.index()]);
        if aig.latch_init(l) {
            let _ = writeln!(body, "#init {} 1", names[l.index()]);
        }
    }
    for v in aig.and_vars() {
        let (a, b) = aig.and_fanins(v);
        let an = refname(a, &mut body, &mut inverted);
        let bn = refname(b, &mut body, &mut inverted);
        let _ = writeln!(body, "{} = AND({an}, {bn})", names[v.index()]);
    }
    out.push_str(&const_seed_line);
    out.push_str(&body);
    for l in output_lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let aig =
            parse_bench("# a comment\nINPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = NAND(a, b)\n").unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.num_ands(), 1);
        assert!(aig.outputs()[0].lit.is_complemented());
    }

    #[test]
    fn parse_feedback_through_dff() {
        let aig = parse_bench("INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n").unwrap();
        assert_eq!(aig.num_latches(), 1);
        let l = aig.latches()[0];
        assert!(!aig.latch_init(l));
        assert!(aig.latch_next(l).is_some());
    }

    #[test]
    fn parse_init_directive() {
        let aig = parse_bench("INPUT(a)\nOUTPUT(q)\n#init q 1\nq = DFF(a)\n").unwrap();
        assert!(aig.latch_init(aig.latches()[0]));
    }

    #[test]
    fn parse_rejects_cycle() {
        let e = parse_bench("INPUT(a)\nOUTPUT(x)\nx = AND(y, a)\ny = AND(x, a)\n").unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn parse_rejects_undefined() {
        let e = parse_bench("OUTPUT(x)\nx = AND(p, q)\n").unwrap_err();
        assert!(e.message.contains("undefined"), "{e}");
    }

    #[test]
    fn parse_rejects_unknown_gate() {
        let e = parse_bench("INPUT(a)\nx = FROB(a)\n").unwrap_err();
        assert!(e.message.contains("unknown gate"), "{e}");
    }

    #[test]
    fn multi_input_gates_decompose() {
        let aig =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(f)\nf = NOR(a, b, c, d)\n")
                .unwrap();
        assert_eq!(aig.num_ands(), 3);
    }

    #[test]
    fn write_then_parse_roundtrip_structure() {
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nq = DFF(d)\n#init q 1\nd = XOR(a, q)\nf = AND(q, b)\n";
        let aig = parse_bench(src).unwrap();
        let text = write_bench(&aig);
        let back = parse_bench(&text).unwrap();
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_latches(), aig.num_latches());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        assert!(back.latch_init(back.latches()[0]));
    }

    #[test]
    fn write_handles_const_output() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let f = aig.and(a, !a); // constant false
        aig.add_output(f, "f");
        let text = write_bench(&aig);
        let back = parse_bench(&text).unwrap();
        assert_eq!(back.outputs()[0].lit, Lit::FALSE);
    }
}
