//! Cross-format round-trip properties of the unified loader: a model
//! chained through every serialization (`.bench` → ASCII `aag` →
//! binary `aig`) must re-fingerprint identically at every hop, with
//! each hop parsed back through `load_model_bytes` format detection
//! rather than a hand-picked parser.

use sec_netlist::{
    load_model, load_model_bytes, parse_bench, structural_fingerprint, write_aiger,
    write_aiger_binary, write_bench, Aig,
};

fn smoke_bench_text() -> String {
    let p = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/smoke.bench");
    std::fs::read_to_string(p).expect("ci/smoke.bench")
}

/// A small handcrafted model with a complemented latch init and shared
/// cones, exercising the corners the smoke circuit may not.
fn handcrafted() -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_input("a").lit();
    let b = aig.add_input("b").lit();
    let l0 = aig.add_latch(true);
    let l1 = aig.add_latch(false);
    let g = aig.and(a, !l0.lit());
    let h = aig.and(g, !b);
    aig.set_latch_next(l0, h);
    aig.set_latch_next(l1, !g);
    aig.add_output(h, "out");
    aig.add_output(!l1.lit(), "qn");
    aig
}

/// bench → aag → aig, each hop parsed back via the auto-detecting
/// loader, fingerprints equal throughout.
fn roundtrip_chain(c1: &Aig) {
    let fp = structural_fingerprint(c1);
    let aag = write_aiger(c1);
    let c2 = load_model_bytes("hop.aag", aag.as_bytes()).unwrap();
    assert_eq!(
        structural_fingerprint(&c2),
        fp,
        "bench → aag changed the model"
    );
    let bin = write_aiger_binary(&c2);
    let c3 = load_model_bytes("hop.aig", &bin).unwrap();
    assert_eq!(
        structural_fingerprint(&c3),
        fp,
        "aag → aig changed the model"
    );
    // And back out to bench text: the full cycle closes.
    let bench = write_bench(&c3);
    let c4 = load_model_bytes("hop.bench", bench.as_bytes()).unwrap();
    assert_eq!(
        structural_fingerprint(&c4),
        fp,
        "aig → bench changed the model"
    );
}

#[test]
fn smoke_circuit_roundtrips_through_every_format() {
    let c1 = load_model_bytes("smoke.bench", smoke_bench_text().as_bytes()).unwrap();
    assert_eq!(
        structural_fingerprint(&c1),
        structural_fingerprint(&parse_bench(&smoke_bench_text()).unwrap()),
        "loader must agree with the direct bench parser"
    );
    roundtrip_chain(&c1);
}

#[test]
fn handcrafted_circuit_roundtrips_through_every_format() {
    roundtrip_chain(&handcrafted());
}

#[test]
fn load_model_detects_all_three_formats_on_disk() {
    let dir = std::env::temp_dir().join(format!("sec-formats-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let aig = handcrafted();
    let fp = structural_fingerprint(&aig);

    let pb = dir.join("m.bench");
    std::fs::write(&pb, write_bench(&aig)).unwrap();
    assert_eq!(structural_fingerprint(&load_model(&pb).unwrap()), fp);

    let pa = dir.join("m.aag");
    std::fs::write(&pa, write_aiger(&aig)).unwrap();
    assert_eq!(structural_fingerprint(&load_model(&pa).unwrap()), fp);

    let pg = dir.join("m.aig");
    std::fs::write(&pg, write_aiger_binary(&aig)).unwrap();
    assert_eq!(structural_fingerprint(&load_model(&pg).unwrap()), fp);

    let _ = std::fs::remove_dir_all(&dir);
}
