//! Round-trip tests: events serialized by `sec-obs`'s NDJSON sink must
//! parse back losslessly through `sec-trace`'s strict parser — including
//! hostile event/field names, non-finite floats, and the terminal
//! `stats.snapshot` / `hist.snapshot` events.

use sec_obs::{emit_snapshot, Counter, Histogram, NdjsonSink, Obs, Recorder, Sink, Value};
use sec_trace::{summarize, Json, Trace};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` handle over a shared buffer, so the test can read back what
/// the sink wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn hostile_events_round_trip_strictly() {
    let buf = SharedBuf::default();
    let sink = NdjsonSink::from_writer(buf.clone());
    // Drive the sink directly: event names and string values with
    // control characters, quotes, backslashes; NaN and infinities.
    sink.event(
        7,
        Some("bdd-corr"),
        "weird\"name\nwith\tcontrol\u{1}",
        &[
            ("note", Value::Str("a\"b\\c\nd\r\u{1f}".into())),
            ("nan", Value::F64(f64::NAN)),
            ("inf", Value::F64(f64::INFINITY)),
            ("ninf", Value::F64(f64::NEG_INFINITY)),
            ("big", Value::U64(u64::MAX)),
            ("neg", Value::I64(-42)),
            ("frac", Value::F64(1.0)),
            ("yes", Value::Bool(true)),
        ],
    );
    sink.event(8, None, "plain", &[]);

    let trace = Trace::parse_strict(&buf.contents()).expect("sink output must be valid JSON");
    assert_eq!(trace.events.len(), 2);
    let ev = &trace.events[0];
    assert_eq!(ev.t_us, 7);
    assert_eq!(ev.ev, "weird\"name\nwith\tcontrol\u{1}");
    assert_eq!(ev.engine.as_deref(), Some("bdd-corr"));
    assert_eq!(ev.str("note"), Some("a\"b\\c\nd\r\u{1f}"));
    // Non-finite floats serialize as null — valid JSON, value lost by
    // design.
    assert_eq!(ev.field("nan"), Some(&Json::Null));
    assert_eq!(ev.field("inf"), Some(&Json::Null));
    assert_eq!(ev.field("ninf"), Some(&Json::Null));
    assert_eq!(ev.u64("big"), Some(u64::MAX));
    assert_eq!(ev.field("neg"), Some(&Json::I64(-42)));
    // `1.0` must come back as a float, not the integer 1.
    assert_eq!(ev.field("frac"), Some(&Json::F64(1.0)));
    assert_eq!(ev.field("yes"), Some(&Json::Bool(true)));
    assert_eq!(trace.events[1].engine, None);
}

#[test]
fn snapshot_round_trips_into_summary() {
    let buf = SharedBuf::default();
    let recorder = Recorder::new();
    let obs = Obs::multi(vec![
        Arc::new(NdjsonSink::from_writer(buf.clone())) as Arc<dyn Sink>,
        Arc::new(recorder.clone()),
    ]);
    obs.add(Counter::Rounds, 3);
    obs.add(Counter::SatConflicts, 41);
    for v in [1u64, 3, 9, 100, 5000] {
        obs.observe(Histogram::SatCallUs, v);
    }
    emit_snapshot(&obs, &recorder, "check");

    let trace = Trace::parse_strict(&buf.contents()).expect("snapshot events must be valid JSON");
    let summary = summarize(&trace);
    // Counters reconstruct exactly from the unscoped snapshot.
    assert_eq!(summary.total("rounds"), 3);
    assert_eq!(summary.total("sat_conflicts"), 41);
    // The histogram reconstructs count/sum/max and quantile estimates.
    let scope = summary.engine(None).expect("unscoped scope present");
    let h = scope.hists.get("sat_call_us").expect("histogram present");
    assert_eq!(h.count, 5);
    assert_eq!(h.sum, 1 + 3 + 9 + 100 + 5000);
    assert_eq!(h.max, 5000);
    let ref_hist = recorder.histogram(Histogram::SatCallUs);
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(h.quantile(q), ref_hist.quantile(q), "q={q}");
    }
}
