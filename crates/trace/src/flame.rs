//! Folded-stack export of the span tree, in the format flamegraph
//! tooling consumes (one `scope;outer;inner self_us` line per unique
//! stack).
//!
//! Spans emit one event *at drop* carrying `dur_us`, so a span's
//! interval is `[t_us - dur_us, t_us]`. Nesting is reconstructed from
//! interval containment per attribution scope (engine threads
//! interleave in the stream but never share a stack).

use crate::parse::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One reconstructed span interval.
struct SpanIv {
    start: u64,
    end: u64,
    /// Position in the stream — on identical intervals the later event
    /// is the parent (inner guards drop first).
    idx: usize,
    name: String,
}

/// An open ancestor frame during the containment sweep.
struct Frame {
    start: u64,
    end: u64,
    /// `scope;...;name` path of this frame.
    path: String,
    /// This frame's own duration.
    dur: u64,
    /// Summed durations of its direct children (for self time).
    child_us: u64,
}

/// Folds a trace's span events into `(stack, self_us)` pairs,
/// aggregated over identical stacks and sorted by stack path. The
/// first frame of every stack is the scope (`main` for unscoped
/// events). Self time is the span's duration minus its direct
/// children's durations.
pub fn folded(trace: &Trace) -> Vec<(String, u64)> {
    let mut by_scope: BTreeMap<String, Vec<SpanIv>> = BTreeMap::new();
    for (idx, ev) in trace.events.iter().enumerate() {
        let Some(dur) = ev.u64("dur_us") else {
            continue;
        };
        let scope = ev.engine.clone().unwrap_or_else(|| "main".to_string());
        by_scope.entry(scope).or_default().push(SpanIv {
            start: ev.t_us.saturating_sub(dur),
            end: ev.t_us,
            idx,
            name: ev.ev.clone(),
        });
    }

    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (scope, mut spans) in by_scope {
        // Parents start no later and end no earlier than their
        // children; visiting by (start asc, end desc, stream order
        // desc) puts every parent before its children.
        spans.sort_by(|a, b| {
            a.start
                .cmp(&b.start)
                .then(b.end.cmp(&a.end))
                .then(b.idx.cmp(&a.idx))
        });
        let mut stack: Vec<Frame> = Vec::new();
        for sp in spans {
            // Pop every open frame that does not contain this span.
            while let Some(top) = stack.last() {
                if top.start <= sp.start && sp.end <= top.end {
                    break;
                }
                pop_frame(&mut stack, &mut stacks);
            }
            let dur = sp.end - sp.start;
            let path = match stack.last_mut() {
                Some(parent) => {
                    parent.child_us += dur;
                    format!("{};{}", parent.path, sp.name)
                }
                None => format!("{scope};{}", sp.name),
            };
            stack.push(Frame {
                start: sp.start,
                end: sp.end,
                path,
                dur,
                child_us: 0,
            });
        }
        while !stack.is_empty() {
            pop_frame(&mut stack, &mut stacks);
        }
    }
    stacks.into_iter().collect()
}

/// Closes the innermost open frame, crediting its self time.
fn pop_frame(stack: &mut Vec<Frame>, stacks: &mut BTreeMap<String, u64>) {
    let f = stack.pop().expect("caller checked non-empty");
    *stacks.entry(f.path).or_insert(0) += f.dur.saturating_sub(f.child_us);
}

/// Renders folded stacks as the text `sec trace flame` prints: one
/// `stack self_us` line per unique stack.
pub fn render_folded(folded: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, self_us) in folded {
        let _ = writeln!(out, "{stack} {self_us}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Trace;

    #[test]
    fn nests_by_containment_and_credits_self_time() {
        // run spans [0,100]; two rounds [10,40] and [50,90] inside it;
        // a solve [20,30] inside the first round. Emission order is
        // drop order: inner first.
        let t = Trace::parse_strict(concat!(
            "{\"t_us\":30,\"ev\":\"solve\",\"dur_us\":10}\n",
            "{\"t_us\":40,\"ev\":\"round\",\"dur_us\":30}\n",
            "{\"t_us\":90,\"ev\":\"round\",\"dur_us\":40}\n",
            "{\"t_us\":100,\"ev\":\"run\",\"dur_us\":100}\n",
        ))
        .unwrap();
        let f = folded(&t);
        let get = |k: &str| f.iter().find(|(s, _)| s == k).map(|(_, v)| *v);
        assert_eq!(get("main;run"), Some(30), "100 - 30 - 40 child time");
        assert_eq!(get("main;run;round"), Some(60), "(30-10) + 40");
        assert_eq!(get("main;run;round;solve"), Some(10));
    }

    #[test]
    fn scopes_get_separate_stacks() {
        let t = Trace::parse_strict(concat!(
            "{\"t_us\":10,\"ev\":\"round\",\"engine\":\"bdd-corr\",\"dur_us\":10}\n",
            "{\"t_us\":12,\"ev\":\"round\",\"engine\":\"sat-corr\",\"dur_us\":8}\n",
            "{\"t_us\":20,\"ev\":\"check.start\"}\n",
        ))
        .unwrap();
        let f = folded(&t);
        assert_eq!(
            f,
            vec![
                ("bdd-corr;round".to_string(), 10),
                ("sat-corr;round".to_string(), 8),
            ]
        );
        let text = render_folded(&f);
        assert!(text.contains("bdd-corr;round 10\n"));
    }
}
