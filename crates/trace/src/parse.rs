//! NDJSON event-stream parsing: a hand-rolled JSON parser (the
//! workspace builds offline, so no serde) with a strict mode that
//! reports line/column diagnostics and a tolerant mode that skips and
//! counts malformed lines.

use std::fmt;

/// A parsed JSON value. The trace schema is flat — one object per
/// line, scalar fields — but the parser accepts arbitrary JSON so a
/// foreign line fails with a type diagnostic, not a syntax error.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also what the writer emits for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    U64(u64),
    /// A negative integer without fraction or exponent.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array (not part of the trace schema, parsed for robustness).
    Arr(Vec<Json>),
    /// A nested object (not part of the trace schema).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a member of an object by key; `None` for non-objects
    /// and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses one complete JSON value (with nothing but whitespace around
/// it) into a [`Json`] tree. `ParseError::line` is always 1: this is
/// the single-value entry point the `sec serve` wire protocol and cache
/// files use, not the NDJSON one — for event streams use
/// [`Trace::parse_strict`].
pub fn parse_json(input: &str) -> Result<Json, ParseError> {
    let mut cur = Cursor {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let located = |(col, msg)| ParseError { line: 1, col, msg };
    let value = cur.parse_value().map_err(located)?;
    cur.skip_ws();
    if cur.pos < cur.bytes.len() {
        return Err(ParseError {
            line: 1,
            col: cur.pos + 1,
            msg: "trailing characters after JSON value".into(),
        });
    }
    Ok(value)
}

/// A strict-mode parse failure, located for the user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the input.
    pub line: usize,
    /// 1-based byte column within the line.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// One trace event: the envelope fields every line carries, plus the
/// event-specific payload fields in emission order.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Microseconds since the emitting process's epoch.
    pub t_us: u64,
    /// Event name (`round`, `check.end`, `stats.snapshot`, ...).
    pub ev: String,
    /// Attribution scope — the `engine` field stamped by the
    /// portfolio's per-engine handles; `None` for orchestrator/solo
    /// events.
    pub engine: Option<String>,
    /// Payload fields (everything but `t_us`/`ev`/`engine`).
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// Looks up a payload field by name.
    pub fn field(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A payload field as `u64`.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(Json::as_u64)
    }

    /// A payload field as `f64`.
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(Json::as_f64)
    }

    /// A payload field as a string slice.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(Json::as_str)
    }
}

/// A parsed trace: the event sequence in input order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Parsed events.
    pub events: Vec<Event>,
    /// Non-blank input lines seen.
    pub lines: usize,
    /// Malformed lines skipped (tolerant mode only; strict mode fails
    /// instead).
    pub skipped: usize,
}

impl Trace {
    /// Parses every non-blank line, failing on the first malformed one
    /// with a line/column diagnostic.
    pub fn parse_strict(input: &str) -> Result<Trace, ParseError> {
        let mut trace = Trace::default();
        for (idx, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            trace.lines += 1;
            match parse_event_line(line) {
                Ok(ev) => trace.events.push(ev),
                Err((col, msg)) => {
                    return Err(ParseError {
                        line: idx + 1,
                        col,
                        msg,
                    })
                }
            }
        }
        Ok(trace)
    }

    /// Parses every non-blank line, skipping malformed ones and
    /// counting them in [`Trace::skipped`].
    pub fn parse_tolerant(input: &str) -> Trace {
        let mut trace = Trace::default();
        for line in input.lines() {
            if line.trim().is_empty() {
                continue;
            }
            trace.lines += 1;
            match parse_event_line(line) {
                Ok(ev) => trace.events.push(ev),
                Err(_) => trace.skipped += 1,
            }
        }
        trace
    }
}

/// Parses one line into an [`Event`], validating the envelope.
/// Errors are `(1-based byte column, message)`.
fn parse_event_line(line: &str) -> Result<Event, (usize, String)> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    cur.skip_ws();
    let start = cur.pos;
    let value = cur.parse_value()?;
    cur.skip_ws();
    if cur.pos < cur.bytes.len() {
        return Err((cur.pos + 1, "trailing characters after JSON value".into()));
    }
    let Json::Obj(members) = value else {
        return Err((start + 1, "event line is not a JSON object".into()));
    };
    let mut t_us = None;
    let mut ev = None;
    let mut engine = None;
    let mut fields = Vec::with_capacity(members.len().saturating_sub(2));
    for (key, val) in members {
        match key.as_str() {
            "t_us" => match val.as_u64() {
                Some(v) => t_us = Some(v),
                None => return Err((1, "\"t_us\" is not a non-negative integer".into())),
            },
            "ev" => match val {
                Json::Str(s) => ev = Some(s),
                _ => return Err((1, "\"ev\" is not a string".into())),
            },
            "engine" => match val {
                Json::Str(s) => engine = Some(s),
                _ => return Err((1, "\"engine\" is not a string".into())),
            },
            _ => fields.push((key, val)),
        }
    }
    let Some(t_us) = t_us else {
        return Err((1, "missing \"t_us\" field".into()));
    };
    let Some(ev) = ev else {
        return Err((1, "missing \"ev\" field".into()));
    };
    Ok(Event {
        t_us,
        ev,
        engine,
        fields,
    })
}

/// Byte cursor over one line. Errors are `(1-based column, message)`.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, (usize, String)> {
        Err((self.pos + 1, msg.into()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), (usize, String)> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Json, (usize, String)> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of line"),
        }
    }

    fn parse_object(&mut self) -> Result<Json, (usize, String)> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected a quoted object key");
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, (usize, String)> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn parse_literal(&mut self, text: &str, value: Json) -> Result<Json, (usize, String)> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected '{text}'"))
        }
    }

    fn parse_string(&mut self) -> Result<String, (usize, String)> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return self.err("invalid low surrogate");
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return self.err("unpaired high surrogate");
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return self.err("unpaired low surrogate");
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            // parse_hex4 leaves pos after the digits;
                            // skip the outer bump below.
                            continue;
                        }
                        _ => return self.err("invalid escape sequence"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return self.err("unescaped control character"),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // the bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is valid UTF-8");
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, (usize, String)> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos = end;
                Ok(v)
            }
            None => self.err("invalid \\u escape digits"),
        }
    }

    fn parse_number(&mut self) -> Result<Json, (usize, String)> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::F64(v)),
            Err(_) => Err((start + 1, format!("invalid number '{text}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_an_event_line() {
        let t = Trace::parse_strict(
            "{\"t_us\":12,\"ev\":\"round\",\"engine\":\"sat-corr\",\"round\":3,\"ok\":true,\
             \"pct\":98.5,\"bad\":null,\"note\":\"a\\nb\"}",
        )
        .unwrap();
        assert_eq!(t.events.len(), 1);
        let e = &t.events[0];
        assert_eq!(e.t_us, 12);
        assert_eq!(e.ev, "round");
        assert_eq!(e.engine.as_deref(), Some("sat-corr"));
        assert_eq!(e.u64("round"), Some(3));
        assert_eq!(e.field("ok"), Some(&Json::Bool(true)));
        assert_eq!(e.f64("pct"), Some(98.5));
        assert_eq!(e.field("bad"), Some(&Json::Null));
        assert_eq!(e.str("note"), Some("a\nb"));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn strict_reports_line_and_column() {
        let err = Trace::parse_strict("{\"t_us\":1,\"ev\":\"a\"}\n{\"t_us\":2,\"ev\":\"b\",}\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 1, "column points into the line: {err}");

        let err = Trace::parse_strict("{\"ev\":\"a\"}").unwrap_err();
        assert!(err.msg.contains("t_us"), "{err}");
        let err = Trace::parse_strict("{\"t_us\":1}").unwrap_err();
        assert!(err.msg.contains("ev"), "{err}");
        let err = Trace::parse_strict("[1,2]").unwrap_err();
        assert!(err.msg.contains("not a JSON object"), "{err}");
    }

    #[test]
    fn tolerant_skips_and_counts() {
        let t = Trace::parse_tolerant(
            "{\"t_us\":1,\"ev\":\"a\"}\nnot json\n\n{\"t_us\":2,\"ev\":\"b\"}\n{broken\n",
        );
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.lines, 4);
        assert_eq!(t.skipped, 2);
    }

    #[test]
    fn numbers_keep_their_kind() {
        let t = Trace::parse_strict(
            "{\"t_us\":1,\"ev\":\"x\",\"u\":42,\"i\":-7,\"f\":1.0,\"e\":2e3,\"big\":18446744073709551615}",
        )
        .unwrap();
        let e = &t.events[0];
        assert_eq!(e.field("u"), Some(&Json::U64(42)));
        assert_eq!(e.field("i"), Some(&Json::I64(-7)));
        assert_eq!(e.field("f"), Some(&Json::F64(1.0)));
        assert_eq!(e.field("e"), Some(&Json::F64(2000.0)));
        assert_eq!(e.field("big"), Some(&Json::U64(u64::MAX)));
        assert_eq!(e.u64("i"), None);
        assert_eq!(e.f64("i"), Some(-7.0));
    }

    #[test]
    fn parse_json_single_value() {
        let v = parse_json(" {\"a\":[1,true],\"b\":{\"c\":\"x\"}} ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::U64(1), Json::Bool(true)]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x")
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Bool(false).as_bool(), Some(false));
        assert_eq!(Json::Null.as_bool(), None);
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{oops").is_err());
    }

    #[test]
    fn nested_values_and_escapes_parse() {
        let t = Trace::parse_strict(
            "{\"t_us\":1,\"ev\":\"x\",\"arr\":[1,\"two\",{\"k\":null}],\"uni\":\"\\u0041\\u00e9\"}",
        )
        .unwrap();
        let e = &t.events[0];
        assert!(matches!(e.field("arr"), Some(Json::Arr(v)) if v.len() == 3));
        assert_eq!(e.str("uni"), Some("Aé"));
    }
}
