//! Regression comparison of two trace summaries: per-counter and
//! per-phase deltas with configurable thresholds, for CI gating
//! against a committed golden trace.

use crate::summary::TraceSummary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Threshold configuration for [`diff`].
///
/// A threshold is a percentage of allowed *growth*: counter `c`
/// regresses when `new > base * (1 + pct/100)` (a zero baseline
/// regresses on any growth). Decreases never regress. Counters without
/// a threshold (and all phase timings, which are machine-dependent)
/// are reported but never gate.
#[derive(Clone, Debug, Default)]
pub struct DiffOptions {
    /// Threshold applied to every counter not named in
    /// [`DiffOptions::thresholds`]. `None` = report-only.
    pub default_threshold_pct: Option<f64>,
    /// Per-counter overrides, by stable counter name.
    pub thresholds: BTreeMap<String, f64>,
}

/// One counter's comparison.
#[derive(Clone, Debug)]
pub struct CounterDelta {
    /// Stable counter name.
    pub name: String,
    /// Baseline total.
    pub base: u64,
    /// New total.
    pub new: u64,
    /// Relative change in percent (`None` when the baseline is 0).
    pub pct: Option<f64>,
    /// The threshold that applied, if any.
    pub threshold_pct: Option<f64>,
    /// Whether the growth exceeded the threshold.
    pub regressed: bool,
}

/// One span phase's wall-clock comparison (never gates).
#[derive(Clone, Debug)]
pub struct PhaseDelta {
    /// Span name, prefixed with its scope when not the main stream.
    pub name: String,
    /// Baseline summed `dur_us`.
    pub base_us: u64,
    /// New summed `dur_us`.
    pub new_us: u64,
}

/// The full comparison of two traces.
#[derive(Clone, Debug, Default)]
pub struct TraceDiff {
    /// Every counter present in either trace, in name order.
    pub counters: Vec<CounterDelta>,
    /// Every phase present in either trace.
    pub phases: Vec<PhaseDelta>,
    /// Names of counters that regressed. Non-empty means the diff
    /// should gate (the CLI exits non-zero).
    pub regressions: Vec<String>,
}

impl TraceDiff {
    /// Whether any thresholded counter regressed.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Compares the trace-wide counter totals (and phase timings) of two
/// summaries.
pub fn diff(base: &TraceSummary, new: &TraceSummary, opts: &DiffOptions) -> TraceDiff {
    let mut names: Vec<&String> = base.totals.keys().chain(new.totals.keys()).collect();
    names.sort();
    names.dedup();

    let mut out = TraceDiff::default();
    for name in names {
        let b = base.total(name);
        let n = new.total(name);
        let threshold = opts
            .thresholds
            .get(name.as_str())
            .copied()
            .or(opts.default_threshold_pct);
        let regressed = match threshold {
            Some(t) => {
                let allowed = b as f64 * (1.0 + t / 100.0);
                n > b && n as f64 > allowed
            }
            None => false,
        };
        if regressed {
            out.regressions.push(name.clone());
        }
        out.counters.push(CounterDelta {
            name: name.clone(),
            base: b,
            new: n,
            pct: (b > 0).then(|| (n as f64 - b as f64) / b as f64 * 100.0),
            threshold_pct: threshold,
            regressed,
        });
    }

    let mut phases: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (summary, idx) in [(base, 0usize), (new, 1usize)] {
        for e in &summary.engines {
            for (name, p) in &e.phases {
                let key = match &e.engine {
                    Some(engine) => format!("{engine}/{name}"),
                    None => name.clone(),
                };
                let slot = phases.entry(key).or_insert((0, 0));
                if idx == 0 {
                    slot.0 += p.total_us;
                } else {
                    slot.1 += p.total_us;
                }
            }
        }
    }
    out.phases = phases
        .into_iter()
        .map(|(name, (base_us, new_us))| PhaseDelta {
            name,
            base_us,
            new_us,
        })
        .collect();
    out
}

/// Renders a diff as the report `sec trace diff` prints.
pub fn render_diff(d: &TraceDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>12} {:>12} {:>9} {:>10}  status",
        "counter", "base", "new", "delta%", "threshold"
    );
    for c in &d.counters {
        let pct = c
            .pct
            .map(|p| format!("{p:+.1}%"))
            .unwrap_or_else(|| "-".into());
        let thr = c
            .threshold_pct
            .map(|t| format!("{t:.0}%"))
            .unwrap_or_else(|| "-".into());
        let status = if c.regressed {
            "REGRESSED"
        } else if c.new > c.base {
            "grew"
        } else if c.new < c.base {
            "shrank"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>12} {:>9} {:>10}  {}",
            c.name, c.base, c.new, pct, thr, status
        );
    }
    if !d.phases.is_empty() {
        let _ = writeln!(out, "phase wall-clock (informational, never gates):");
        for p in &d.phases {
            let _ = writeln!(
                out,
                "  {:<24} {:>10}µs -> {:>10}µs",
                p.name, p.base_us, p.new_us
            );
        }
    }
    if d.regressed() {
        let _ = writeln!(out, "REGRESSION: {}", d.regressions.join(", "));
    } else {
        let _ = writeln!(out, "no regressions");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Trace;
    use crate::summary::summarize;

    fn summary_with(counters: &str) -> TraceSummary {
        summarize(
            &Trace::parse_strict(&format!(
                "{{\"t_us\":1,\"ev\":\"stats.snapshot\",\"unit\":\"check\",{counters}}}"
            ))
            .unwrap(),
        )
    }

    #[test]
    fn thresholds_gate_growth_only() {
        let base = summary_with("\"sat_conflicts\":100,\"rounds\":10");
        let new = summary_with("\"sat_conflicts\":120,\"rounds\":9");
        // Report-only by default.
        let d = diff(&base, &new, &DiffOptions::default());
        assert!(!d.regressed());

        // A 10% ceiling catches the 20% conflict growth; the shrinking
        // rounds counter never gates.
        let opts = DiffOptions {
            default_threshold_pct: Some(10.0),
            ..DiffOptions::default()
        };
        let d = diff(&base, &new, &opts);
        assert_eq!(d.regressions, vec!["sat_conflicts".to_string()]);
        assert!(render_diff(&d).contains("REGRESSED"));

        // A per-counter override loosens it back.
        let opts = DiffOptions {
            default_threshold_pct: Some(10.0),
            thresholds: [("sat_conflicts".to_string(), 50.0)].into_iter().collect(),
        };
        assert!(!diff(&base, &new, &opts).regressed());
    }

    #[test]
    fn zero_baseline_regresses_on_any_growth() {
        let base = summary_with("\"rounds\":1");
        let new = summary_with("\"rounds\":1,\"bdd_gc_runs\":1");
        let opts = DiffOptions {
            default_threshold_pct: Some(100.0),
            ..DiffOptions::default()
        };
        let d = diff(&base, &new, &opts);
        assert_eq!(d.regressions, vec!["bdd_gc_runs".to_string()]);
        let gc = d.counters.iter().find(|c| c.name == "bdd_gc_runs").unwrap();
        assert_eq!(gc.pct, None);
    }
}
