//! # sec-trace — the read side of `sec` observability
//!
//! `sec-obs` (the write side) streams every engine's fixed-point
//! trajectory as NDJSON behind `--trace-json`; this crate consumes
//! those streams. It is dependency-free like the writer: a hand-rolled
//! JSON parser with strict (line/column diagnostics) and tolerant
//! (skip-and-count) modes, plus three analyses behind the `sec trace`
//! CLI family:
//!
//! * [`summarize`] — per-engine/per-phase digest: rounds, splits,
//!   classes, counter totals from `stats.snapshot` events, latency
//!   histograms from `hist.snapshot` events, and an internal
//!   reconciliation of the event stream against the snapshot counters
//!   (the same invariant `CheckStats` derivation relies on);
//! * [`diff`] — two traces → per-counter deltas with configurable
//!   regression thresholds, for CI gating against a golden trace;
//! * [`folded`] — folded-stack export of the span tree for flamegraph
//!   tooling.
//!
//! The NDJSON schema is documented in `DESIGN.md §9`; the CLI surface
//! in `docs/TRACE.md`.
//!
//! ```
//! use sec_trace::{summarize, Trace};
//!
//! let trace = Trace::parse_strict(
//!     "{\"t_us\":5,\"ev\":\"round\",\"round\":1,\"splits\":2}\n\
//!      {\"t_us\":9,\"ev\":\"check.end\",\"verdict\":\"equivalent\"}\n",
//! )
//! .unwrap();
//! let summary = summarize(&trace);
//! assert_eq!(summary.engine(None).unwrap().rounds, 1);
//! assert_eq!(summary.checks[0].verdict, "equivalent");
//! ```

#![warn(missing_docs)]

mod diff;
mod flame;
mod parse;
mod summary;

pub use diff::{diff, render_diff, CounterDelta, DiffOptions, PhaseDelta, TraceDiff};
pub use flame::{folded, render_folded};
pub use parse::{parse_json, Event, Json, ParseError, Trace};
pub use summary::{
    render_summary, summarize, CheckOutcome, EngineSummary, HistAgg, PhaseAgg, TraceSummary,
};
