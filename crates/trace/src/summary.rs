//! Per-engine/per-phase trace summarization and reconciliation against
//! the counters recorded in `stats.snapshot` events.

use crate::parse::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log buckets in a `hist.snapshot` payload (mirrors
/// `sec-obs`; this crate is dependency-free, so the layout constant is
/// restated here).
pub const HIST_BUCKETS: usize = 64;

/// Aggregated wall-clock of one span name (`round`, ...) within one
/// scope.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Spans seen.
    pub count: u64,
    /// Summed `dur_us` across them.
    pub total_us: u64,
}

/// A latency histogram rebuilt from one or more `hist.snapshot`
/// events. Merging is exact because every snapshot shares the
/// power-of-two bucket layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistAgg {
    /// Total samples.
    pub count: u64,
    /// Sum of sample values.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket counts (bucket 0 holds the value 0; bucket `i ≥ 1`
    /// holds `[2^(i-1), 2^i - 1]`).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistAgg {
    fn default() -> HistAgg {
        HistAgg {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistAgg {
    /// Folds one `hist.snapshot` payload (count/sum/max plus the
    /// compact `"bucket:count ..."` string) into this aggregate.
    fn merge_snapshot(&mut self, count: u64, sum: u64, max: u64, buckets: &str) {
        self.count += count;
        self.sum += sum;
        self.max = self.max.max(max);
        for part in buckets.split_whitespace() {
            if let Some((i, c)) = part.split_once(':') {
                if let (Ok(i), Ok(c)) = (i.parse::<usize>(), c.parse::<u64>()) {
                    if i < HIST_BUCKETS {
                        self.buckets[i] += c;
                    }
                }
            }
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q`: the containing bucket's upper bound,
    /// clamped to the observed maximum (same estimator as `sec-obs`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                let upper = match i {
                    0 => 0,
                    _ if i >= HIST_BUCKETS - 1 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// Everything one attribution scope (engine, or the unscoped
/// orchestrator/solo stream) did in a trace.
#[derive(Clone, Debug, Default)]
pub struct EngineSummary {
    /// The scope (`None` = unscoped).
    pub engine: Option<String>,
    /// Events attributed to the scope.
    pub events: u64,
    /// `round` events (fixed-point refinement rounds).
    pub rounds: u64,
    /// Summed `splits` fields of completed rounds.
    pub splits: u64,
    /// Last `classes` field seen on a `round` or `check.end` event.
    pub classes: Option<u64>,
    /// Last verdict seen (`check.end`, `engine.verdict`, or
    /// `race.end`).
    pub verdict: Option<String>,
    /// Counters/gauges summed from this scope's `stats.snapshot`
    /// events, by stable counter name.
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock per span name (any event carrying `dur_us`).
    pub phases: BTreeMap<String, PhaseAgg>,
    /// Latency histograms rebuilt from `hist.snapshot` events.
    pub hists: BTreeMap<String, HistAgg>,
    /// `progress` heartbeat events seen.
    pub progress: u64,
}

/// Outcome of one `check.end` (or `race.end`) event — the fields the
/// CLI's `--stats`/`--json` output is reconciled against.
#[derive(Clone, Debug, Default)]
pub struct CheckOutcome {
    /// Scope the check ran under.
    pub engine: Option<String>,
    /// `equivalent` / `inequivalent` / `unknown`.
    pub verdict: String,
    /// Refinement rounds reported at the end.
    pub rounds: Option<u64>,
    /// Final equivalence-class count.
    pub classes: Option<u64>,
    /// Signals participating in the correspondence.
    pub signals: Option<u64>,
    /// Percentage of signals proved equivalent to another.
    pub eqs_percent: Option<f64>,
    /// Shortcut attribution (`simulation` when lockstep simulation
    /// refuted before the fixed point).
    pub by: Option<String>,
}

/// The full digest of one trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Non-blank lines in the input.
    pub lines: usize,
    /// Parsed events.
    pub events: usize,
    /// Malformed lines skipped by the tolerant parser.
    pub skipped: usize,
    /// Span of the event timestamps (last − first), in microseconds.
    pub duration_us: u64,
    /// Totals summed over *unscoped* `stats.snapshot` events — the
    /// trace-wide counter reconstruction. (Scoped snapshots are
    /// per-engine detail: under the portfolio the orchestrator's
    /// unscoped snapshot already includes every engine's counters.)
    pub totals: BTreeMap<String, u64>,
    /// Per-scope digests, unscoped first, then by first appearance.
    pub engines: Vec<EngineSummary>,
    /// Every `check.end`/`race.end` outcome, in stream order.
    pub checks: Vec<CheckOutcome>,
    /// Internal-consistency mismatches (event stream vs snapshot
    /// counters); empty when the trace reconciles.
    pub mismatches: Vec<String>,
}

impl TraceSummary {
    /// Convenience: a trace-wide counter total (0 when absent — absent
    /// and zero are the same thing, snapshots only carry non-zero
    /// counters).
    pub fn total(&self, counter: &str) -> u64 {
        self.totals.get(counter).copied().unwrap_or(0)
    }

    /// The digest of one scope, if present.
    pub fn engine(&self, engine: Option<&str>) -> Option<&EngineSummary> {
        self.engines.iter().find(|e| e.engine.as_deref() == engine)
    }
}

/// Digests a parsed trace.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let mut summary = TraceSummary {
        lines: trace.lines,
        events: trace.events.len(),
        skipped: trace.skipped,
        ..TraceSummary::default()
    };
    let mut scopes: Vec<Option<String>> = Vec::new();
    let mut by_scope: BTreeMap<Option<String>, EngineSummary> = BTreeMap::new();
    let (mut t_min, mut t_max) = (u64::MAX, 0u64);

    for ev in &trace.events {
        t_min = t_min.min(ev.t_us);
        t_max = t_max.max(ev.t_us);
        if !scopes.contains(&ev.engine) {
            scopes.push(ev.engine.clone());
        }
        let scope = by_scope
            .entry(ev.engine.clone())
            .or_insert_with(|| EngineSummary {
                engine: ev.engine.clone(),
                ..EngineSummary::default()
            });
        scope.events += 1;

        if let Some(dur) = ev.u64("dur_us") {
            let phase = scope.phases.entry(ev.ev.clone()).or_default();
            phase.count += 1;
            phase.total_us += dur;
        }

        match ev.ev.as_str() {
            "round" => {
                scope.rounds += 1;
                // Aborted rounds emit without `splits` (the counter was
                // likewise never bumped), so the sum still reconciles.
                scope.splits += ev.u64("splits").unwrap_or(0);
                if let Some(c) = ev.u64("classes") {
                    scope.classes = Some(c);
                }
            }
            "progress" => scope.progress += 1,
            "stats.snapshot" => {
                for (key, val) in &ev.fields {
                    if key == "unit" {
                        continue;
                    }
                    if let Some(v) = val.as_u64() {
                        *scope.counters.entry(key.clone()).or_insert(0) += v;
                        if ev.engine.is_none() {
                            *summary.totals.entry(key.clone()).or_insert(0) += v;
                        }
                    }
                }
            }
            "hist.snapshot" => {
                if let (Some(name), Some(count), Some(sum), Some(max)) = (
                    ev.str("name"),
                    ev.u64("count"),
                    ev.u64("sum"),
                    ev.u64("max"),
                ) {
                    scope
                        .hists
                        .entry(name.to_string())
                        .or_default()
                        .merge_snapshot(count, sum, max, ev.str("buckets").unwrap_or(""));
                }
            }
            "check.end" | "race.end" => {
                let verdict = ev
                    .str("verdict")
                    .or_else(|| ev.str("winner").map(|_| "unknown"))
                    .unwrap_or("unknown")
                    .to_string();
                scope.verdict = Some(verdict.clone());
                if let Some(c) = ev.u64("classes") {
                    scope.classes = Some(c);
                }
                summary.checks.push(CheckOutcome {
                    engine: ev.engine.clone(),
                    verdict,
                    rounds: ev.u64("rounds"),
                    classes: ev.u64("classes"),
                    signals: ev.u64("signals"),
                    eqs_percent: ev.f64("eqs_percent"),
                    by: ev.str("by").map(str::to_string),
                });
            }
            "engine.verdict" => {
                // The orchestrator names the engine in an `engine`
                // field, which doubles as the envelope's scope
                // attribution — the verdict lands on that engine's
                // summary directly.
                if let Some(v) = ev.str("verdict") {
                    scope.verdict = Some(v.to_string());
                }
            }
            _ => {}
        }
    }

    if t_max >= t_min && t_min != u64::MAX {
        summary.duration_us = t_max - t_min;
    }

    // Event stream vs snapshot counters: `round` events and their
    // `splits` fields must sum to the trace-wide counters — the same
    // invariant `CheckStats` derivation relies on.
    let (mut rounds, mut splits) = (0u64, 0u64);
    for s in by_scope.values() {
        rounds += s.rounds;
        splits += s.splits;
    }
    for (name, seen, counted) in [
        ("rounds", rounds, summary.total("rounds")),
        ("splits", splits, summary.total("splits")),
    ] {
        if !summary.totals.is_empty() && seen != counted {
            summary.mismatches.push(format!(
                "{name}: {seen} from events vs {counted} from stats.snapshot"
            ));
        }
    }

    summary.engines = scopes
        .into_iter()
        .map(|k| by_scope.remove(&k).expect("scope digest exists"))
        .collect();
    summary.engines.sort_by_key(|e| e.engine.is_some() as usize);
    summary
}

fn fmt_us(us: u64) -> String {
    if us < 10_000 {
        format!("{us}µs")
    } else if us < 10_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

fn scope_label(engine: &Option<String>) -> &str {
    engine.as_deref().unwrap_or("(main)")
}

/// Renders a summary as the human-readable report `sec trace summary`
/// prints.
pub fn render_summary(s: &TraceSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events on {} lines ({} skipped), spanning {}",
        s.events,
        s.lines,
        s.skipped,
        fmt_us(s.duration_us)
    );

    for c in &s.checks {
        let mut line = format!("verdict [{}]: {}", scope_label(&c.engine), c.verdict);
        if let Some(by) = &c.by {
            let _ = write!(line, " (by {by})");
        }
        if let Some(r) = c.rounds {
            let _ = write!(line, " rounds={r}");
        }
        if let Some(cl) = c.classes {
            let _ = write!(line, " classes={cl}");
        }
        if let Some(sg) = c.signals {
            let _ = write!(line, " signals={sg}");
        }
        if let Some(p) = c.eqs_percent {
            let _ = write!(line, " eqs={p:.1}%");
        }
        let _ = writeln!(out, "{line}");
    }

    if !s.totals.is_empty() {
        let _ = writeln!(out, "totals (unscoped stats.snapshot):");
        for (name, v) in &s.totals {
            let _ = writeln!(out, "  {name:<26} {v}");
        }
    }

    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>7} {:>7} {:>8} {:>9}  verdict",
        "engine", "events", "rounds", "splits", "classes", "progress"
    );
    for e in &s.engines {
        let classes = e
            .classes
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>7} {:>7} {:>8} {:>9}  {}",
            scope_label(&e.engine),
            e.events,
            e.rounds,
            e.splits,
            classes,
            e.progress,
            e.verdict.as_deref().unwrap_or("-")
        );
    }

    let mut wrote_header = false;
    for e in &s.engines {
        for (name, p) in &e.phases {
            if !wrote_header {
                let _ = writeln!(out, "phases (wall-clock from span events):");
                wrote_header = true;
            }
            let _ = writeln!(
                out,
                "  [{}] {:<14} {:>6} × total {}",
                scope_label(&e.engine),
                name,
                p.count,
                fmt_us(p.total_us)
            );
        }
    }

    let mut wrote_header = false;
    for e in &s.engines {
        for (name, h) in &e.hists {
            if !wrote_header {
                let _ = writeln!(out, "latency histograms:");
                wrote_header = true;
            }
            let _ = writeln!(
                out,
                "  [{}] {:<12} n={:<7} p50={} p90={} p99={} max={} mean={:.1}µs",
                scope_label(&e.engine),
                name,
                h.count,
                fmt_us(h.quantile(0.50)),
                fmt_us(h.quantile(0.90)),
                fmt_us(h.quantile(0.99)),
                fmt_us(h.max),
                h.mean()
            );
        }
    }

    for m in &s.mismatches {
        let _ = writeln!(out, "RECONCILIATION MISMATCH: {m}");
    }
    if s.mismatches.is_empty() && !s.totals.is_empty() {
        let _ = writeln!(
            out,
            "reconciliation: event stream matches snapshot counters"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Trace;

    fn demo_trace() -> Trace {
        Trace::parse_strict(concat!(
            "{\"t_us\":1,\"ev\":\"check.start\",\"backend\":\"sat\",\"signals\":10}\n",
            "{\"t_us\":5,\"ev\":\"round\",\"round\":1,\"splits\":2,\"classes\":5,\"dur_us\":4}\n",
            "{\"t_us\":6,\"ev\":\"progress\",\"round\":1,\"classes\":5,\"elapsed_ms\":1}\n",
            "{\"t_us\":9,\"ev\":\"round\",\"round\":2,\"splits\":0,\"classes\":5,\"dur_us\":3}\n",
            "{\"t_us\":10,\"ev\":\"hist.snapshot\",\"name\":\"sat_call_us\",\"count\":3,",
            "\"sum\":9,\"max\":5,\"p50\":3,\"p90\":5,\"p99\":5,\"buckets\":\"2:2 3:1\"}\n",
            "{\"t_us\":11,\"ev\":\"stats.snapshot\",\"unit\":\"check\",\"rounds\":2,",
            "\"splits\":2,\"sat_conflicts\":7}\n",
            "{\"t_us\":12,\"ev\":\"check.end\",\"verdict\":\"equivalent\",\"rounds\":2,",
            "\"classes\":5,\"signals\":10,\"eqs_percent\":50.0}\n",
        ))
        .unwrap()
    }

    #[test]
    fn summarizes_and_reconciles() {
        let s = summarize(&demo_trace());
        assert_eq!(s.events, 7);
        assert_eq!(s.duration_us, 11);
        assert_eq!(s.total("rounds"), 2);
        assert_eq!(s.total("splits"), 2);
        assert_eq!(s.total("sat_conflicts"), 7);
        assert!(s.mismatches.is_empty(), "{:?}", s.mismatches);

        let main = s.engine(None).unwrap();
        assert_eq!(main.rounds, 2);
        assert_eq!(main.splits, 2);
        assert_eq!(main.classes, Some(5));
        assert_eq!(main.progress, 1);
        assert_eq!(main.verdict.as_deref(), Some("equivalent"));
        assert_eq!(main.phases["round"].count, 2);
        assert_eq!(main.phases["round"].total_us, 7);
        let h = &main.hists["sat_call_us"];
        assert_eq!(h.count, 3);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 5);

        assert_eq!(s.checks.len(), 1);
        assert_eq!(s.checks[0].verdict, "equivalent");
        assert_eq!(s.checks[0].eqs_percent, Some(50.0));

        let text = render_summary(&s);
        assert!(text.contains("equivalent"));
        assert!(text.contains("sat_call_us"));
        assert!(text.contains("reconciliation: event stream matches"));
    }

    #[test]
    fn mismatch_is_reported() {
        let t = Trace::parse_strict(concat!(
            "{\"t_us\":1,\"ev\":\"round\",\"round\":1,\"splits\":1}\n",
            "{\"t_us\":2,\"ev\":\"stats.snapshot\",\"unit\":\"check\",\"rounds\":2,\"splits\":1}\n",
        ))
        .unwrap();
        let s = summarize(&t);
        assert_eq!(s.mismatches.len(), 1);
        assert!(s.mismatches[0].contains("rounds"));
        assert!(render_summary(&s).contains("RECONCILIATION MISMATCH"));
    }

    #[test]
    fn scoped_snapshots_do_not_pollute_totals() {
        let t = Trace::parse_strict(concat!(
            "{\"t_us\":1,\"ev\":\"round\",\"engine\":\"sat-corr\",\"round\":1,\"splits\":3}\n",
            "{\"t_us\":2,\"ev\":\"stats.snapshot\",\"engine\":\"sat-corr\",\"unit\":\"check\",",
            "\"rounds\":1,\"splits\":3}\n",
            "{\"t_us\":3,\"ev\":\"stats.snapshot\",\"unit\":\"race\",\"rounds\":1,\"splits\":3}\n",
        ))
        .unwrap();
        let s = summarize(&t);
        assert_eq!(s.total("rounds"), 1, "only the unscoped snapshot counts");
        let eng = s.engine(Some("sat-corr")).unwrap();
        assert_eq!(eng.counters["splits"], 3);
        assert!(s.mismatches.is_empty(), "{:?}", s.mismatches);
    }
}
