//! In-repo stand-in for the `rand` crate.
//!
//! The build environment is fully offline, so the workspace cannot fetch
//! crates-io dependencies; this crate implements exactly the API subset
//! the workspace uses (`StdRng::seed_from_u64`, `gen`, `gen_bool`,
//! `gen_range`) with the same module layout, backed by a seeded
//! xoshiro256** generator. Deterministic for a given seed, like the
//! `StdRng` contract (though the streams differ from crates-io `rand`,
//! which the workspace never relied on).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from all their values.
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges a uniform integer can be drawn from (`gen_range`).
pub trait SampleRange<T> {
    /// Samples a value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: uniform in `[0, n)` (negligible bias
/// for the `n` used in this workspace).
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, u32, u64, usize);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 uniform mantissa bits, as in crates-io rand.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform value from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    ///
    /// (crates-io `StdRng` is ChaCha12; the workspace only requires a
    /// deterministic, well-mixed stream, not that exact cipher.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = r.gen_range(0..4);
            assert!((0..4).contains(&w));
            let u: usize = r.gen_range(0..=5);
            assert!(u <= 5);
        }
        // Degenerate inclusive range.
        let x: usize = r.gen_range(2..=2);
        assert_eq!(x, 2);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "rate {hits}");
    }

    #[test]
    fn bool_sampling_is_balanced() {
        let mut r = StdRng::seed_from_u64(11);
        let ones = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4500..5500).contains(&ones), "ones {ones}");
    }
}
