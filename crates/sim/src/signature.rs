//! Sequential random simulation and signature-based candidate partitioning.
//!
//! The paper (Sec. 4) suggests partitioning the set `F` of signal functions
//! by sequential simulation with random input vectors before starting the
//! fixed-point iteration: signals that differ on some simulated reachable
//! state are certainly not sequentially equivalent, so the refinement loop
//! starts from a much better initial approximation.
//!
//! Signatures are *polarity-normalized* against the reference point
//! `(s0, x0)` (pattern 0 of cycle 0), so antivalent signals receive equal
//! signatures — matching the paper's normalization of `F`.

use crate::BitSim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::{Aig, Lit, Var};
use std::collections::HashMap;

/// Per-node simulation signatures collected over a sequential run.
#[derive(Clone, Debug)]
pub struct Signatures {
    /// Words per node: `cycles * num_words`.
    words_per_node: usize,
    /// Signature words, node-major.
    sigs: Vec<u64>,
    /// Value of each node at the reference point `(s0, x0)`.
    ref_value: Vec<bool>,
}

impl Signatures {
    /// Runs `cycles` clock cycles of `64 * num_words` parallel random
    /// executions from the initial state and records every node's values.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` or `num_words` is zero, or if a latch is
    /// undriven.
    pub fn collect(aig: &Aig, cycles: usize, num_words: usize, seed: u64) -> Signatures {
        assert!(cycles > 0 && num_words > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = BitSim::new(aig, num_words);
        sim.reset(aig);
        let n = aig.num_nodes();
        let words_per_node = cycles * num_words;
        let mut sigs = vec![0u64; n * words_per_node];
        let mut ref_value = vec![false; n];
        for c in 0..cycles {
            for i in 0..aig.num_inputs() {
                let words: Vec<u64> = (0..num_words).map(|_| rng.gen()).collect();
                sim.set_input(aig, i, &words);
            }
            sim.eval(aig);
            for v in aig.vars() {
                let base = v.index() * words_per_node + c * num_words;
                let src = sim.var_words(v);
                sigs[base..base + num_words].copy_from_slice(src);
                if c == 0 {
                    ref_value[v.index()] = src[0] & 1 != 0;
                }
            }
            sim.latch_step(aig);
        }
        Signatures {
            words_per_node,
            sigs,
            ref_value,
        }
    }

    /// The raw (un-normalized) signature of a variable.
    pub fn raw(&self, var: Var) -> &[u64] {
        let s = var.index() * self.words_per_node;
        &self.sigs[s..s + self.words_per_node]
    }

    /// The value of a node at the reference point `(s0, x0)`; this is the
    /// polarity used to normalize the node's function in the set `F`.
    pub fn ref_value(&self, var: Var) -> bool {
        self.ref_value[var.index()]
    }

    /// The normalized signature: complemented so that the reference-point
    /// value is 1, as in the paper's construction of `F`.
    pub fn normalized(&self, var: Var) -> Vec<u64> {
        let mask = if self.ref_value(var) { 0u64 } else { !0u64 };
        self.raw(var).iter().map(|&w| w ^ mask).collect()
    }

    /// Whether two literals have identical simulated behaviour.
    pub fn lits_agree(&self, a: Lit, b: Lit) -> bool {
        let mask = if a.is_complemented() != b.is_complemented() {
            !0u64
        } else {
            0
        };
        self.raw(a.var())
            .iter()
            .zip(self.raw(b.var()))
            .all(|(&x, &y)| x == (y ^ mask))
    }

    /// Partitions `vars` into candidate equivalence classes by normalized
    /// signature. Singleton classes are retained (the fixed-point engine
    /// filters them as it sees fit); class order follows first appearance.
    pub fn partition(&self, vars: impl IntoIterator<Item = Var>) -> Vec<Vec<Var>> {
        let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut classes: Vec<Vec<Var>> = Vec::new();
        for v in vars {
            let key = self.normalized(v);
            match index.get(&key) {
                Some(&i) => classes[i].push(v),
                None => {
                    index.insert(key, classes.len());
                    classes.push(vec![v]);
                }
            }
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two latches implementing the same toggle; plus an antivalent copy.
    fn twin_toggle() -> (Aig, Var, Var, Var) {
        let mut aig = Aig::new();
        let en = aig.add_input("en").lit();
        let q1 = aig.add_latch(false);
        let q2 = aig.add_latch(false);
        // q3 starts inverted and applies the same toggle function, so it
        // stays the complement of q1 forever (antivalent).
        let q3 = aig.add_latch(true);
        let n1 = aig.xor(q1.lit(), en);
        let n2 = aig.xor(q2.lit(), en);
        let n3 = aig.xor(q3.lit(), en);
        aig.set_latch_next(q1, n1);
        aig.set_latch_next(q2, n2);
        aig.set_latch_next(q3, n3);
        aig.add_output(q1.lit(), "q");
        (aig, q1, q2, q3)
    }

    #[test]
    fn equivalent_latches_share_class() {
        let (aig, q1, q2, q3) = twin_toggle();
        let sigs = Signatures::collect(&aig, 8, 2, 1);
        let classes = sigs.partition([q1, q2, q3]);
        assert_eq!(classes.len(), 1, "normalization must merge antivalent q3");
        assert_eq!(classes[0].len(), 3);
    }

    #[test]
    fn ref_values_differ_for_antivalent() {
        let (aig, q1, _, q3) = twin_toggle();
        let sigs = Signatures::collect(&aig, 4, 1, 7);
        assert_ne!(sigs.ref_value(q1), sigs.ref_value(q3));
    }

    #[test]
    fn lits_agree_handles_polarity() {
        let (aig, q1, q2, q3) = twin_toggle();
        let sigs = Signatures::collect(&aig, 8, 1, 3);
        assert!(sigs.lits_agree(q1.lit(), q2.lit()));
        assert!(sigs.lits_agree(q1.lit(), !q3.lit()));
        assert!(!sigs.lits_agree(q1.lit(), q3.lit()));
    }

    #[test]
    fn distinct_functions_split() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let f = aig.and(a, b);
        let g = aig.or(a, b);
        let sigs = Signatures::collect(&aig, 2, 4, 11);
        let classes = sigs.partition([f.var(), g.var()]);
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn deterministic_for_seed() {
        let (aig, q1, ..) = twin_toggle();
        let s1 = Signatures::collect(&aig, 4, 1, 42);
        let s2 = Signatures::collect(&aig, 4, 1, 42);
        assert_eq!(s1.raw(q1), s2.raw(q1));
    }
}
