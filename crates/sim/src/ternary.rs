//! Three-valued (0/1/X) simulation for initialization analysis.
//!
//! Retiming verification flows contemporary with the paper (Huang,
//! Cheng & Chen's preprocessing, the paper's ref. [10]) rely on
//! *3-valued equivalence*: starting every register at X and checking
//! that the circuits agree wherever they are defined. This module
//! provides the ternary evaluator, the sequential stepper, and
//! self-initialization ("reset sequence") analysis.

use sec_netlist::{Aig, Node};

/// A three-valued logic value.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Ternary {
    /// Definitely 0.
    Zero,
    /// Definitely 1.
    One,
    /// Unknown.
    X,
}

impl Ternary {
    /// Ternary AND: 0 dominates X.
    #[must_use]
    pub fn and(self, other: Ternary) -> Ternary {
        use Ternary::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        }
    }

    /// Complements iff `c` is true (X stays X).
    #[must_use]
    pub fn complement_if(self, c: bool) -> Ternary {
        if c {
            !self
        } else {
            self
        }
    }

    /// Whether the value is definite (not X).
    pub fn is_definite(self) -> bool {
        self != Ternary::X
    }
}

impl std::ops::Not for Ternary {
    type Output = Ternary;
    fn not(self) -> Ternary {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::X => Ternary::X,
        }
    }
}

impl From<bool> for Ternary {
    fn from(b: bool) -> Ternary {
        if b {
            Ternary::One
        } else {
            Ternary::Zero
        }
    }
}

/// Evaluates every node under ternary inputs and state.
///
/// # Panics
///
/// Panics if the slices have the wrong lengths.
pub fn ternary_eval(aig: &Aig, inputs: &[Ternary], state: &[Ternary]) -> Vec<Ternary> {
    assert_eq!(inputs.len(), aig.num_inputs());
    assert_eq!(state.len(), aig.num_latches());
    let mut vals = vec![Ternary::X; aig.num_nodes()];
    for v in aig.vars() {
        vals[v.index()] = match aig.node(v) {
            Node::Const => Ternary::Zero,
            Node::Input { index } => inputs[*index as usize],
            Node::Latch { index, .. } => state[*index as usize],
            Node::And { a, b } => {
                let av = vals[a.var().index()].complement_if(a.is_complemented());
                let bv = vals[b.var().index()].complement_if(b.is_complemented());
                av.and(bv)
            }
        };
    }
    vals
}

/// A sequential three-valued simulator.
#[derive(Clone, Debug)]
pub struct TernarySim {
    state: Vec<Ternary>,
}

impl TernarySim {
    /// Starts from the fully unknown state (every register X).
    pub fn all_x(aig: &Aig) -> TernarySim {
        TernarySim {
            state: vec![Ternary::X; aig.num_latches()],
        }
    }

    /// Starts from the circuit's specified initial state.
    pub fn from_reset(aig: &Aig) -> TernarySim {
        TernarySim {
            state: aig.initial_state().iter().map(|&b| b.into()).collect(),
        }
    }

    /// The current register values.
    pub fn state(&self) -> &[Ternary] {
        &self.state
    }

    /// Whether every register is definite.
    pub fn is_definite(&self) -> bool {
        self.state.iter().all(|v| v.is_definite())
    }

    /// Applies one input vector, returning the output values, and steps
    /// the registers.
    ///
    /// # Panics
    ///
    /// Panics on input arity mismatch or undriven latches.
    pub fn step(&mut self, aig: &Aig, inputs: &[Ternary]) -> Vec<Ternary> {
        let vals = ternary_eval(aig, inputs, &self.state);
        let outs = aig
            .outputs()
            .iter()
            .map(|o| vals[o.lit.var().index()].complement_if(o.lit.is_complemented()))
            .collect();
        self.state = aig
            .latches()
            .iter()
            .map(|&l| {
                let n = aig.latch_next(l).expect("driven latch");
                vals[n.var().index()].complement_if(n.is_complemented())
            })
            .collect();
        outs
    }
}

/// Applies a reset sequence from the all-X state; returns the definite
/// register values if the sequence fully initializes the circuit.
pub fn initializes(aig: &Aig, sequence: &[Vec<Ternary>]) -> Option<Vec<bool>> {
    let mut sim = TernarySim::all_x(aig);
    for frame in sequence {
        sim.step(aig, frame);
    }
    sim.state()
        .iter()
        .map(|v| match v {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::X => None,
        })
        .collect()
}

/// Three-valued equivalence on a trace: both circuits start all-X and
/// must produce identical ternary outputs on every frame (X counts as
/// agreeing only with X — the conservative alignment used by retiming
/// preprocessing).
///
/// # Panics
///
/// Panics if the interfaces differ.
pub fn ternary_outputs_agree(a: &Aig, b: &Aig, sequence: &[Vec<Ternary>]) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    let mut sa = TernarySim::all_x(a);
    let mut sb = TernarySim::all_x(b);
    for frame in sequence {
        if sa.step(a, frame) != sb.step(b, frame) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_netlist::Aig;
    use Ternary::{One, Zero, X};

    /// Counter with synchronous clear (as generated by `sec-gen`).
    fn clearable() -> Aig {
        let mut aig = Aig::new();
        let clr = aig.add_input("clr").lit();
        let q = aig.add_latch(false);
        // next = !clr & !q  (toggle with clear)
        let n = aig.and(!clr, !q.lit());
        aig.set_latch_next(q, n);
        aig.add_output(q.lit(), "q");
        aig
    }

    #[test]
    fn ternary_and_truth_table() {
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(One), X);
        assert_eq!(One.and(One), One);
        assert_eq!(!X, X);
        assert_eq!(!Zero, One);
        assert!(!X.is_definite());
        assert_eq!(Ternary::from(true), One);
    }

    #[test]
    fn x_propagates_through_gates() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let f = aig.and(a, b);
        let g = aig.or(a, b);
        let vals = ternary_eval(&aig, &[Zero, X], &[]);
        assert_eq!(vals[f.var().index()], Zero); // 0 & X = 0
                                                 // or = !( !a & !b ): !0 & !X = 1 & X = X -> or = X
        assert_eq!(vals[g.var().index()].complement_if(g.is_complemented()), X);
    }

    #[test]
    fn clear_initializes_from_x() {
        let aig = clearable();
        assert_eq!(initializes(&aig, &[vec![X]]), None);
        // One clear cycle: next = !1 & !q = 0 regardless of q.
        let st = initializes(&aig, &[vec![One]]).expect("clear must initialize");
        assert_eq!(st, vec![false]);
    }

    #[test]
    fn lfsr_never_self_initializes() {
        let aig = sec_gen_free_lfsr();
        let seq = vec![vec![One]; 20];
        assert_eq!(initializes(&aig, &seq), None);
    }

    /// A tiny LFSR-like circuit without any clear path.
    fn sec_gen_free_lfsr() -> Aig {
        let mut aig = Aig::new();
        let en = aig.add_input("en").lit();
        let q0 = aig.add_latch(true);
        let q1 = aig.add_latch(false);
        let fb = aig.xor(q1.lit(), en);
        aig.set_latch_next(q0, fb);
        aig.set_latch_next(q1, q0.lit());
        aig.add_output(q1.lit(), "o");
        aig
    }

    #[test]
    fn ternary_equivalence_of_identical_circuits() {
        let a = clearable();
        let seq = vec![vec![One], vec![Zero], vec![Zero], vec![X]];
        assert!(ternary_outputs_agree(&a, &a.clone(), &seq));
    }

    #[test]
    fn from_reset_is_definite() {
        let aig = clearable();
        let sim = TernarySim::from_reset(&aig);
        assert!(sim.is_definite());
        assert_eq!(sim.state(), &[Zero]);
    }
}
