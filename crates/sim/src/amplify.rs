//! Bit-parallel counterexample amplification.
//!
//! A SAT query of the correspondence fixed point yields *one* witness
//! `(s, x_t, x_{t+1})`. Splitting classes by a single evaluation wastes
//! the 64-way parallelism the simulator already has: this module packs
//! the witness together with randomly bit-flipped neighbour patterns
//! into one [`BitSim`] run over both time frames, so a single solver
//! call can refine many classes at once.
//!
//! Pattern 0 is always the exact witness. Neighbours perturb a few
//! random bits of the witness, which keeps them *near* the manifold of
//! assignments satisfying the correspondence condition `Q` — whether a
//! neighbour actually satisfies `Q` must be checked by the caller
//! (frame-0 values are exposed for exactly that), because splitting by
//! a point violating `Q` would over-refine the partition.

use crate::BitSim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::Aig;

/// The two evaluated time frames of an amplified counterexample.
///
/// `frame0` holds every node's value at `(s ⊕ ε, x_t ⊕ ε)` per pattern;
/// `frame1` holds every node's value one clock later, at the frame-0
/// next state under inputs `x_{t+1} ⊕ ε`.
#[derive(Clone, Debug)]
pub struct AmplifiedCex {
    /// Frame-0 evaluation (current state, inputs `x_t`).
    pub frame0: BitSim,
    /// Frame-1 evaluation (successor state, inputs `x_{t+1}`).
    pub frame1: BitSim,
}

/// Broadcast of one bit to a whole pattern word.
#[inline]
fn fill(b: bool) -> u64 {
    if b {
        !0u64
    } else {
        0
    }
}

/// Sparse per-pattern flip masks over `positions` bit positions:
/// `masks[pos * num_words + w]` has bit `k` set iff pattern `64*w + k`
/// flips position `pos`. Pattern 0 never flips (it is the witness).
///
/// Positions at and above `hot_lo` are flipped with strong bias (7 of
/// 8 flips): callers put the positions whose perturbation can never
/// invalidate the pattern there — for a two-frame witness, the
/// second-frame inputs, which leave frame 0 (and hence the
/// correspondence condition `Q`) untouched. Flipping frame-0 bits
/// almost always violates `Q` and gets the pattern masked out, so only
/// an occasional flip explores that direction.
fn flip_masks(positions: usize, hot_lo: usize, num_words: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut masks = vec![0u64; positions * num_words];
    if positions == 0 {
        return masks;
    }
    for pattern in 1..64 * num_words {
        let flips = rng.gen_range(1..=2usize);
        for _ in 0..flips {
            let pos = if hot_lo < positions && rng.gen_range(0..8u32) != 0 {
                rng.gen_range(hot_lo..positions)
            } else {
                rng.gen_range(0..positions)
            };
            masks[pos * num_words + pattern / 64] |= 1u64 << (pattern % 64);
        }
    }
    masks
}

/// Evaluates the witness `(state, inputs_t, inputs_t1)` and `64 *
/// num_words - 1` randomly perturbed neighbours over two time frames.
///
/// Pattern 0 is the unmodified witness; every other pattern flips one
/// or two random bits of the concatenated `(state, inputs_t,
/// inputs_t1)` vector. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if the slice lengths do not match the circuit interface or
/// `num_words` is zero.
#[allow(clippy::needless_range_loop)] // i indexes witness slices and mask rows alike
pub fn amplify_two_frame(
    aig: &Aig,
    state: &[bool],
    inputs_t: &[bool],
    inputs_t1: &[bool],
    num_words: usize,
    seed: u64,
) -> AmplifiedCex {
    assert_eq!(state.len(), aig.num_latches());
    assert_eq!(inputs_t.len(), aig.num_inputs());
    assert_eq!(inputs_t1.len(), aig.num_inputs());
    let nl = aig.num_latches();
    let ni = aig.num_inputs();
    let mut rng = StdRng::seed_from_u64(seed);
    // The x_{t+1} block is "hot": flipping it cannot perturb frame 0.
    let masks = flip_masks(nl + 2 * ni, nl + ni, num_words, &mut rng);
    let at = |pos: usize| &masks[pos * num_words..(pos + 1) * num_words];

    let mut frame0 = BitSim::new(aig, num_words);
    let mut words = vec![0u64; num_words];
    for i in 0..nl {
        for (w, m) in words.iter_mut().zip(at(i)) {
            *w = fill(state[i]) ^ m;
        }
        frame0.set_latch(aig, i, &words);
    }
    for i in 0..ni {
        for (w, m) in words.iter_mut().zip(at(nl + i)) {
            *w = fill(inputs_t[i]) ^ m;
        }
        frame0.set_input(aig, i, &words);
    }
    frame0.eval(aig);

    let mut frame1 = BitSim::new(aig, num_words);
    for (i, &l) in aig.latches().iter().enumerate() {
        let next = aig.latch_next(l).expect("driven latch");
        for (w, word) in words.iter_mut().enumerate() {
            *word = frame0.lit_word(next, w);
        }
        frame1.set_latch(aig, i, &words);
    }
    for i in 0..ni {
        for (w, m) in words.iter_mut().zip(at(nl + ni + i)) {
            *w = fill(inputs_t1[i]) ^ m;
        }
        frame1.set_input(aig, i, &words);
    }
    frame1.eval(aig);

    AmplifiedCex { frame0, frame1 }
}

/// Evaluates the witness input vector and `64 * num_words - 1` randomly
/// perturbed neighbours at the circuit's initial state.
///
/// Pattern 0 is the unmodified witness. Unlike the two-frame case every
/// pattern is a valid splitting point — the initial-state condition
/// quantifies over *all* inputs — so no validity filtering is needed.
///
/// # Panics
///
/// Panics if `inputs` has the wrong length or `num_words` is zero.
#[allow(clippy::needless_range_loop)] // i indexes witness slice and mask rows alike
pub fn amplify_init(aig: &Aig, inputs: &[bool], num_words: usize, seed: u64) -> BitSim {
    assert_eq!(inputs.len(), aig.num_inputs());
    let ni = aig.num_inputs();
    let mut rng = StdRng::seed_from_u64(seed);
    // Every input flip is valid at the initial state: all positions hot.
    let masks = flip_masks(ni, 0, num_words, &mut rng);

    let mut sim = BitSim::new(aig, num_words);
    sim.reset(aig);
    let mut words = vec![0u64; num_words];
    for i in 0..ni {
        for (w, m) in words
            .iter_mut()
            .zip(&masks[i * num_words..(i + 1) * num_words])
        {
            *w = fill(inputs[i]) ^ m;
        }
        sim.set_input(aig, i, &words);
    }
    sim.eval(aig);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval_single, next_state_single};

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let q = aig.add_latch(false);
        let r = aig.add_latch(true);
        let nq = aig.xor(q.lit(), a);
        let nr = aig.and(r.lit(), b);
        aig.set_latch_next(q, nq);
        aig.set_latch_next(r, nr);
        aig.add_output(nq, "o");
        aig
    }

    #[test]
    fn pattern_zero_is_the_exact_witness() {
        let aig = sample();
        let s = vec![true, false];
        let xt = vec![false, true];
        let xt1 = vec![true, true];
        let amp = amplify_two_frame(&aig, &s, &xt, &xt1, 2, 42);
        let f0 = eval_single(&aig, &xt, &s);
        let s1 = next_state_single(&aig, &xt, &s);
        let f1 = eval_single(&aig, &xt1, &s1);
        for v in aig.vars() {
            assert_eq!(amp.frame0.lit_bit(v.lit(), 0), f0[v.index()], "{v:?} f0");
            assert_eq!(amp.frame1.lit_bit(v.lit(), 0), f1[v.index()], "{v:?} f1");
        }
    }

    #[test]
    fn neighbours_differ_from_the_witness() {
        let aig = sample();
        let amp = amplify_two_frame(
            &aig,
            &[false, false],
            &[false, false],
            &[false, false],
            1,
            7,
        );
        // With an all-zero witness, any flipped state/input bit shows up
        // directly on that node's frame-0 word.
        let mut flipped = 0u64;
        for &v in aig.latches().iter().chain(aig.inputs()) {
            flipped |= amp.frame0.lit_word(v.lit(), 0);
        }
        assert_ne!(flipped, 0, "some neighbour must perturb frame 0");
        assert_eq!(flipped & 1, 0, "pattern 0 must stay the witness");
    }

    #[test]
    fn init_amplification_fixes_the_state() {
        let aig = sample();
        let xi = vec![true, false];
        let sim = amplify_init(&aig, &xi, 1, 3);
        let init = aig.initial_state();
        let vals = eval_single(&aig, &xi, &init);
        for v in aig.vars() {
            assert_eq!(sim.lit_bit(v.lit(), 0), vals[v.index()], "{v:?}");
        }
        // Latches stay at their initial values in every pattern.
        for (i, &l) in aig.latches().iter().enumerate() {
            assert_eq!(sim.lit_word(l.lit(), 0), fill(init[i]), "latch {i}");
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let aig = sample();
        let a = amplify_two_frame(&aig, &[true, true], &[false, true], &[true, false], 1, 11);
        let b = amplify_two_frame(&aig, &[true, true], &[false, true], &[true, false], 1, 11);
        for v in aig.vars() {
            assert_eq!(a.frame1.lit_word(v.lit(), 0), b.frame1.lit_word(v.lit(), 0));
        }
    }
}
