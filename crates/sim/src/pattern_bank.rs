//! A persistent bank of counterexample witnesses.
//!
//! The amplification machinery ([`amplify_two_frame`](crate::amplify_two_frame)
//! / [`amplify_init`](crate::amplify_init)) turns one SAT witness into
//! 64+ simulation patterns, refines the candidate partition with them —
//! and then throws them away. That discards real information: a pattern
//! that was *invalid* for refinement in round `r` (its frame-0 state
//! violated a class constraint of the then-current partition) can
//! become valid later, because refinement only ever *removes*
//! constraints. The [`PatternBank`] keeps the raw witnesses so every
//! later round can replay them — re-amplified deterministically from
//! the stored seed — and discharge splits without paying for another
//! solver call.
//!
//! The bank stores raw witnesses rather than amplified words: a
//! witness is a few bit-vectors, while its amplification is
//! `words × signals` bits, and replaying through the simulator keeps
//! the split decisions bit-identical to what the original
//! counterexample path would have done.
//!
//! Capacity is budgeted in amplification *words* (the unit the
//! engine's replay cost is measured in); insertion beyond the budget
//! evicts the oldest entry (FIFO). The owner is expected to drop
//! entries that can never split again — see
//! [`PatternBank::retain`].

use std::collections::VecDeque;

/// One raw counterexample witness, replayable in any later round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BankPattern {
    /// A two-frame witness: a state satisfying the partition
    /// constraints of the round that produced it, plus the input
    /// vectors of both frames.
    TwoFrame {
        /// Frame-0 latch values.
        state: Vec<bool>,
        /// Frame-0 primary inputs.
        inputs_t: Vec<bool>,
        /// Frame-1 primary inputs.
        inputs_t1: Vec<bool>,
        /// Amplification seed of the producing round, so replay
        /// regenerates the identical perturbed neighbourhood.
        seed: u64,
    },
    /// An initial-frame witness: inputs applied in the initial state.
    Init {
        /// Primary inputs in the initial state.
        inputs: Vec<bool>,
        /// Amplification seed of the producing round.
        seed: u64,
    },
}

/// A FIFO-bounded store of [`BankPattern`]s. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct PatternBank {
    entries: VecDeque<BankPattern>,
    max_entries: usize,
}

impl PatternBank {
    /// A bank budgeted at `capacity_words` total amplification words,
    /// where each stored witness costs `words_per_entry` (the engine's
    /// amplification width) to replay. A zero `capacity_words`
    /// disables the bank (nothing is ever stored).
    pub fn new(capacity_words: usize, words_per_entry: usize) -> PatternBank {
        PatternBank {
            entries: VecDeque::new(),
            max_entries: capacity_words / words_per_entry.max(1),
        }
    }

    /// Whether the bank accepts patterns at all.
    pub fn is_enabled(&self) -> bool {
        self.max_entries > 0
    }

    /// Number of stored witnesses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bank holds no witnesses.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores a witness, evicting the oldest if the budget is full.
    /// No-op on a disabled bank.
    pub fn push(&mut self, pattern: BankPattern) {
        if self.max_entries == 0 {
            return;
        }
        if self.entries.len() >= self.max_entries {
            self.entries.pop_front();
        }
        self.entries.push_back(pattern);
    }

    /// Replays the bank: calls `keep` on every stored witness, oldest
    /// first, dropping those for which it returns `false`. The caller
    /// returns `false` for *exhausted* entries — ones whose
    /// amplification was fully valid against the current partition yet
    /// split nothing. Such an entry can never split again (validity
    /// only widens and surviving co-classed pairs only shrink as the
    /// partition refines), so keeping it would only slow every later
    /// round down.
    pub fn retain(&mut self, keep: impl FnMut(&BankPattern) -> bool) {
        self.entries.retain(keep);
    }

    /// The stored witnesses, oldest first (for persistence).
    pub fn patterns(&self) -> impl Iterator<Item = &BankPattern> {
        self.entries.iter()
    }

    /// Bulk-loads witnesses (cache warm-start), respecting the budget.
    pub fn extend(&mut self, patterns: impl IntoIterator<Item = BankPattern>) {
        for p in patterns {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init(n: u64) -> BankPattern {
        BankPattern::Init {
            inputs: vec![n & 1 == 1],
            seed: n,
        }
    }

    #[test]
    fn fifo_eviction_respects_word_budget() {
        // 8 words at 4 words/entry → 2 entries.
        let mut bank = PatternBank::new(8, 4);
        assert!(bank.is_enabled());
        bank.push(init(1));
        bank.push(init(2));
        bank.push(init(3));
        assert_eq!(bank.len(), 2);
        let seeds: Vec<u64> = bank
            .patterns()
            .map(|p| match p {
                BankPattern::Init { seed, .. } => *seed,
                BankPattern::TwoFrame { seed, .. } => *seed,
            })
            .collect();
        assert_eq!(seeds, vec![2, 3], "oldest entry was evicted");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut bank = PatternBank::new(0, 1);
        assert!(!bank.is_enabled());
        bank.push(init(1));
        assert!(bank.is_empty());
        // words_per_entry 0 is treated as 1, not a division by zero.
        let b = PatternBank::new(3, 0);
        assert!(b.is_enabled());
    }

    #[test]
    fn retain_drops_exhausted_entries() {
        let mut bank = PatternBank::new(4, 1);
        bank.extend([init(1), init(2), init(3)]);
        bank.retain(|p| !matches!(p, BankPattern::Init { seed: 2, .. }));
        assert_eq!(bank.len(), 2);
    }
}
