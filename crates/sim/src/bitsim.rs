//! 64-way bit-parallel combinational simulation.

use sec_netlist::{Aig, Lit, Node, Var};

/// A bit-parallel simulator: evaluates every node of an [`Aig`] for
/// `64 * num_words` input patterns at once.
///
/// Values are stored per *variable* (positive polarity); literal values are
/// derived by complementing on read.
///
/// # Examples
///
/// ```
/// use sec_netlist::Aig;
/// use sec_sim::BitSim;
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a").lit();
/// let b = aig.add_input("b").lit();
/// let f = aig.and(a, b);
///
/// let mut sim = BitSim::new(&aig, 1);
/// sim.set_input(&aig, 0, &[0b1100]);
/// sim.set_input(&aig, 1, &[0b1010]);
/// sim.eval(&aig);
/// assert_eq!(sim.lit_word(f, 0) & 0b1111, 0b1000);
/// ```
#[derive(Clone, Debug)]
pub struct BitSim {
    num_words: usize,
    values: Vec<u64>,
}

impl BitSim {
    /// Creates a simulator for `aig` holding `num_words` 64-bit pattern
    /// words per node. All values start at zero.
    ///
    /// # Panics
    ///
    /// Panics if `num_words` is zero.
    pub fn new(aig: &Aig, num_words: usize) -> BitSim {
        assert!(num_words > 0, "BitSim requires at least one word");
        BitSim {
            num_words,
            values: vec![0; aig.num_nodes() * num_words],
        }
    }

    /// Number of 64-bit words per node.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Number of patterns simulated in parallel.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.num_words * 64
    }

    /// Grows the value table to cover newly added nodes (e.g. after the
    /// retiming extension added gates); existing values are preserved.
    pub fn resize(&mut self, aig: &Aig) {
        self.values.resize(aig.num_nodes() * self.num_words, 0);
    }

    #[inline]
    fn range(&self, var: Var) -> std::ops::Range<usize> {
        let s = var.index() * self.num_words;
        s..s + self.num_words
    }

    /// The value words of a variable (positive polarity).
    #[inline]
    pub fn var_words(&self, var: Var) -> &[u64] {
        &self.values[self.range(var)]
    }

    /// One value word of a literal (complement applied).
    #[inline]
    pub fn lit_word(&self, lit: Lit, word: usize) -> u64 {
        let w = self.values[lit.var().index() * self.num_words + word];
        if lit.is_complemented() {
            !w
        } else {
            w
        }
    }

    /// The value of a literal in a single pattern.
    #[inline]
    pub fn lit_bit(&self, lit: Lit, pattern: usize) -> bool {
        (self.lit_word(lit, pattern / 64) >> (pattern % 64)) & 1 != 0
    }

    /// Sets the pattern words of primary input `index`.
    ///
    /// # Panics
    ///
    /// Panics if `words` has the wrong length.
    pub fn set_input(&mut self, aig: &Aig, index: usize, words: &[u64]) {
        assert_eq!(words.len(), self.num_words);
        let var = aig.inputs()[index];
        let r = self.range(var);
        self.values[r].copy_from_slice(words);
    }

    /// Sets the pattern words of latch `index` (its current-state value).
    ///
    /// # Panics
    ///
    /// Panics if `words` has the wrong length.
    pub fn set_latch(&mut self, aig: &Aig, index: usize, words: &[u64]) {
        assert_eq!(words.len(), self.num_words);
        let var = aig.latches()[index];
        let r = self.range(var);
        self.values[r].copy_from_slice(words);
    }

    /// Broadcasts a single boolean to all patterns of latch `index`.
    pub fn set_latch_uniform(&mut self, aig: &Aig, index: usize, value: bool) {
        let var = aig.latches()[index];
        let fill = if value { !0u64 } else { 0 };
        let r = self.range(var);
        self.values[r].fill(fill);
    }

    /// Evaluates all AND gates in topological order. Input and latch words
    /// must have been set beforehand; the constant node is always zero.
    pub fn eval(&mut self, aig: &Aig) {
        let w = self.num_words;
        for v in aig.vars() {
            if let Node::And { a, b } = aig.node(v) {
                let (a, b) = (*a, *b);
                let ai = a.var().index() * w;
                let bi = b.var().index() * w;
                let oi = v.index() * w;
                let am = if a.is_complemented() { !0u64 } else { 0 };
                let bm = if b.is_complemented() { !0u64 } else { 0 };
                for k in 0..w {
                    let av = self.values[ai + k] ^ am;
                    let bv = self.values[bi + k] ^ bm;
                    self.values[oi + k] = av & bv;
                }
            }
        }
    }

    /// Copies each latch's next-state literal value into the latch itself,
    /// advancing the sequential state by one clock cycle. Call after
    /// [`BitSim::eval`].
    pub fn latch_step(&mut self, aig: &Aig) {
        let w = self.num_words;
        let mut next_vals: Vec<u64> = Vec::with_capacity(aig.num_latches() * w);
        for &l in aig.latches() {
            let next = aig
                .latch_next(l)
                .expect("latch_step requires driven latches");
            for k in 0..w {
                next_vals.push(self.lit_word(next, k));
            }
        }
        for (i, &l) in aig.latches().iter().enumerate() {
            let r = self.range(l);
            self.values[r].copy_from_slice(&next_vals[i * w..(i + 1) * w]);
        }
    }

    /// Initializes every latch to its specified initial value (broadcast to
    /// all patterns).
    pub fn reset(&mut self, aig: &Aig) {
        for i in 0..aig.num_latches() {
            let init = aig.latch_init(aig.latches()[i]);
            self.set_latch_uniform(aig, i, init);
        }
    }
}

/// Evaluates a circuit for a single pattern, returning one boolean per node
/// (positive polarity).
///
/// `inputs` and `state` are indexed like [`Aig::inputs`] / [`Aig::latches`].
///
/// # Panics
///
/// Panics if the slices have the wrong lengths.
pub fn eval_single(aig: &Aig, inputs: &[bool], state: &[bool]) -> Vec<bool> {
    assert_eq!(inputs.len(), aig.num_inputs());
    assert_eq!(state.len(), aig.num_latches());
    let mut vals = vec![false; aig.num_nodes()];
    for v in aig.vars() {
        vals[v.index()] = match aig.node(v) {
            Node::Const => false,
            Node::Input { index } => inputs[*index as usize],
            Node::Latch { index, .. } => state[*index as usize],
            Node::And { a, b } => {
                let av = vals[a.var().index()] ^ a.is_complemented();
                let bv = vals[b.var().index()] ^ b.is_complemented();
                av && bv
            }
        };
    }
    vals
}

/// The next state reached from `state` under `inputs` (single pattern).
pub fn next_state_single(aig: &Aig, inputs: &[bool], state: &[bool]) -> Vec<bool> {
    let vals = eval_single(aig, inputs, state);
    aig.latches()
        .iter()
        .map(|&l| {
            let n = aig.latch_next(l).expect("driven latch");
            vals[n.var().index()] ^ n.is_complemented()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> Aig {
        let mut aig = Aig::new();
        let en = aig.add_input("en").lit();
        let q = aig.add_latch(false);
        let next = aig.xor(q.lit(), en);
        aig.set_latch_next(q, next);
        aig.add_output(q.lit(), "q");
        aig
    }

    #[test]
    fn and_truth_table() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let b = aig.add_input("b").lit();
        let f = aig.and(a, b);
        let g = aig.or(a, b);
        let h = aig.xor(a, b);
        let mut sim = BitSim::new(&aig, 1);
        sim.set_input(&aig, 0, &[0b1100]);
        sim.set_input(&aig, 1, &[0b1010]);
        sim.eval(&aig);
        assert_eq!(sim.lit_word(f, 0) & 0b1111, 0b1000);
        assert_eq!(sim.lit_word(g, 0) & 0b1111, 0b1110);
        assert_eq!(sim.lit_word(h, 0) & 0b1111, 0b0110);
    }

    #[test]
    fn toggle_counts() {
        let aig = toggle();
        let mut sim = BitSim::new(&aig, 1);
        sim.reset(&aig);
        // Pattern 0: en=1 every cycle -> q toggles 0,1,0,1...
        // Pattern 1: en=0 every cycle -> q stays 0.
        sim.set_input(&aig, 0, &[0b01]);
        let q = aig.latches()[0].lit();
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.eval(&aig);
            seen.push(sim.lit_word(q, 0) & 0b11);
            sim.latch_step(&aig);
        }
        assert_eq!(seen, vec![0b00, 0b01, 0b00, 0b01]);
    }

    #[test]
    fn eval_single_matches_bitsim() {
        let aig = toggle();
        let vals = eval_single(&aig, &[true], &[true]);
        let next = aig.latch_next(aig.latches()[0]).unwrap();
        assert!(!(vals[next.var().index()] ^ next.is_complemented()));
        let ns = next_state_single(&aig, &[true], &[true]);
        assert_eq!(ns, vec![false]);
        let ns2 = next_state_single(&aig, &[true], &[false]);
        assert_eq!(ns2, vec![true]);
    }

    #[test]
    fn lit_bit_indexing() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let mut sim = BitSim::new(&aig, 2);
        sim.set_input(&aig, 0, &[1u64 << 63, 1]);
        sim.eval(&aig);
        assert!(sim.lit_bit(a, 63));
        assert!(sim.lit_bit(a, 64));
        assert!(!sim.lit_bit(a, 0));
        assert!(sim.lit_bit(!a, 0));
    }

    #[test]
    fn resize_preserves() {
        let mut aig = Aig::new();
        let a = aig.add_input("a").lit();
        let mut sim = BitSim::new(&aig, 1);
        sim.set_input(&aig, 0, &[42]);
        let b = aig.add_input("b").lit();
        let f = aig.and(a, b);
        sim.resize(&aig);
        sim.set_input(&aig, 1, &[!0]);
        sim.eval(&aig);
        assert_eq!(sim.lit_word(f, 0), 42);
    }
}
