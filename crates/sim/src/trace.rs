//! Input traces: counterexample witnesses and their replay.

use crate::bitsim::{eval_single, next_state_single};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_netlist::Aig;

/// A finite sequence of input vectors applied from the initial state.
///
/// Produced as a counterexample witness by bounded model checking and by
/// the exact traversal baseline; consumed by [`Trace::replay`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Trace {
    /// `inputs[frame][input_index]`.
    pub inputs: Vec<Vec<bool>>,
}

impl Trace {
    /// Creates a trace from per-frame input vectors.
    pub fn new(inputs: Vec<Vec<bool>>) -> Trace {
        Trace { inputs }
    }

    /// A random trace of `frames` input vectors.
    pub fn random(num_inputs: usize, frames: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        Trace {
            inputs: (0..frames)
                .map(|_| (0..num_inputs).map(|_| rng.gen()).collect())
                .collect(),
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the trace has no frames.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Replays the trace from the initial state and returns the output
    /// values observed at every frame (`result[frame][output_index]`).
    ///
    /// # Panics
    ///
    /// Panics if an input vector has the wrong arity or a latch is
    /// undriven.
    pub fn replay(&self, aig: &Aig) -> Vec<Vec<bool>> {
        let mut state = aig.initial_state();
        let mut outs = Vec::with_capacity(self.inputs.len());
        for frame in &self.inputs {
            assert_eq!(frame.len(), aig.num_inputs(), "input arity mismatch");
            let vals = eval_single(aig, frame, &state);
            outs.push(
                aig.outputs()
                    .iter()
                    .map(|o| vals[o.lit.var().index()] ^ o.lit.is_complemented())
                    .collect(),
            );
            state = next_state_single(aig, frame, &state);
        }
        outs
    }

    /// The sequence of states visited (including the initial state, so the
    /// result has `len() + 1` entries).
    pub fn states(&self, aig: &Aig) -> Vec<Vec<bool>> {
        let mut state = aig.initial_state();
        let mut states = vec![state.clone()];
        for frame in &self.inputs {
            state = next_state_single(aig, frame, &state);
            states.push(state.clone());
        }
        states
    }
}

/// Checks whether two circuits with identical interfaces produce identical
/// outputs on a trace; returns the first differing `(frame, output)` pair.
///
/// This is the cheap refutation check used everywhere before invoking the
/// expensive engines.
///
/// # Panics
///
/// Panics if the circuits have different numbers of inputs or outputs.
pub fn first_output_mismatch(a: &Aig, b: &Aig, trace: &Trace) -> Option<(usize, usize)> {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    let oa = trace.replay(a);
    let ob = trace.replay(b);
    for f in 0..trace.len() {
        for o in 0..a.num_outputs() {
            if oa[f][o] != ob[f][o] {
                return Some((f, o));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_netlist::Aig;

    fn counter2() -> Aig {
        // 2-bit binary counter, increments every cycle; output = msb.
        let mut aig = Aig::new();
        let b0 = aig.add_latch(false);
        let b1 = aig.add_latch(false);
        let n0 = !b0.lit();
        let n1 = aig.xor(b1.lit(), b0.lit());
        aig.set_latch_next(b0, n0);
        aig.set_latch_next(b1, n1);
        aig.add_output(b1.lit(), "msb");
        aig
    }

    #[test]
    fn replay_counter() {
        let aig = counter2();
        let trace = Trace::new(vec![vec![]; 5]);
        let outs = trace.replay(&aig);
        let msb: Vec<bool> = outs.iter().map(|o| o[0]).collect();
        // states: 00 01 10 11 00 -> msb: 0 0 1 1 0
        assert_eq!(msb, vec![false, false, true, true, false]);
    }

    #[test]
    fn states_include_initial() {
        let aig = counter2();
        let trace = Trace::new(vec![vec![]; 2]);
        let states = trace.states(&aig);
        assert_eq!(states.len(), 3);
        assert_eq!(states[0], vec![false, false]);
        assert_eq!(states[1], vec![true, false]);
        assert_eq!(states[2], vec![false, true]);
    }

    #[test]
    fn mismatch_detection() {
        let a = counter2();
        let mut b = counter2();
        // Sabotage: complement the output.
        let lit = b.outputs()[0].lit;
        b.set_output(0, !lit);
        let trace = Trace::new(vec![vec![]; 3]);
        assert_eq!(first_output_mismatch(&a, &a.clone(), &trace), None);
        assert_eq!(first_output_mismatch(&a, &b, &trace), Some((0, 0)));
    }

    #[test]
    fn random_trace_shape() {
        let t = Trace::random(3, 7, 9);
        assert_eq!(t.len(), 7);
        assert!(!t.is_empty());
        assert!(t.inputs.iter().all(|f| f.len() == 3));
        assert_eq!(t, Trace::random(3, 7, 9));
    }
}
