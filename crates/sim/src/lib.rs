//! # sec-sim
//!
//! Bit-parallel simulation for sequential and-inverter graphs:
//!
//! * [`BitSim`] — 64-way parallel combinational/sequential evaluation;
//! * [`amplify_two_frame`] / [`amplify_init`] — bit-parallel
//!   counterexample amplification: one SAT witness plus 63+ perturbed
//!   neighbours evaluated in a single pass, so one solver call can
//!   refine many correspondence classes;
//! * [`Signatures`] — random sequential simulation with polarity-normalized
//!   signatures, used to seed the signal-correspondence partition (paper
//!   Sec. 4);
//! * [`Trace`] — input sequences, counterexample replay, and lockstep
//!   output comparison.
//!
//! ## Example
//!
//! ```
//! use sec_netlist::Aig;
//! use sec_sim::{Signatures, Trace};
//!
//! let mut aig = Aig::new();
//! let en = aig.add_input("en").lit();
//! let q = aig.add_latch(false);
//! let nq = aig.xor(q.lit(), en);
//! aig.set_latch_next(q, nq);
//! aig.add_output(q.lit(), "q");
//!
//! let sigs = Signatures::collect(&aig, 8, 1, 42);
//! let classes = sigs.partition(aig.latches().iter().copied());
//! assert_eq!(classes.len(), 1);
//!
//! let outs = Trace::random(1, 4, 0).replay(&aig);
//! assert_eq!(outs.len(), 4);
//! ```

#![warn(missing_docs)]

mod amplify;
mod bitsim;
mod pattern_bank;
mod signature;
mod ternary;
mod trace;

pub use amplify::{amplify_init, amplify_two_frame, AmplifiedCex};
pub use bitsim::{eval_single, next_state_single, BitSim};
pub use pattern_bank::{BankPattern, PatternBank};
pub use signature::Signatures;
pub use ternary::{initializes, ternary_eval, ternary_outputs_agree, Ternary, TernarySim};
pub use trace::{first_output_mismatch, Trace};
