//! # sec-portfolio
//!
//! A parallel multi-engine portfolio solver: races the workspace's four
//! complementary decision engines on worker threads and returns the
//! first **definitive** verdict, cancelling the losers cooperatively.
//!
//! The engines are orthogonal in what they decide quickly:
//!
//! | Engine      | Proves | Refutes | Strength                          |
//! |-------------|--------|---------|-----------------------------------|
//! | `bdd-corr`  | yes    | no*     | retimed/resynthesized circuits    |
//! | `sat-corr`  | yes    | no*     | multiplier-like BDD-hostile logic |
//! | `bmc`       | no     | yes     | shallow counterexamples           |
//! | `traversal` | yes    | yes     | small state spaces, including the |
//! |             |        |         | cases where correspondence is     |
//! |             |        |         | incomplete                        |
//!
//! (* — in a portfolio lineup the correspondence engines run with
//! simulation/BMC refutation disabled, so refutations are attributed to
//! the dedicated BMC engine and a win always names the method that
//! actually decided.)
//!
//! `Unknown` results do **not** win: an engine that times out,
//! overflows its node budget, or hits van Eijk incompleteness simply
//! drops out of the race. Only when every engine has dropped out does
//! the portfolio degrade gracefully to [`Verdict::Unknown`] with the
//! per-engine reasons.
//!
//! Cancellation is cooperative: all engines share one
//! [`CancellationToken`] whose flag their hot loops poll (BDD
//! unique-table insertion, SAT propagate/decide, image computation), so
//! losers stop within milliseconds of the winning verdict and leave
//! their managers consistent.
//!
//! ## Example
//!
//! ```
//! use sec_portfolio::{run, PortfolioOptions};
//! use sec_core::Verdict;
//! use sec_gen::{counter, CounterKind};
//!
//! let spec = counter(4, CounterKind::Binary);
//! let result = run(&spec, &spec.clone(), &PortfolioOptions::default())?;
//! assert_eq!(result.verdict, Verdict::Equivalent);
//! println!("won by {}", result.winner.unwrap());
//! # Ok::<(), sec_core::SecError>(())
//! ```

#![warn(missing_docs)]

use sec_core::{
    bmc_refute, stats::JsonObject, Backend, BuildError, Checker, OptionsBuilder, SecError, Verdict,
};
use sec_netlist::{check as check_circuit, Aig, ProductMachine};
use sec_obs::{emit_snapshot, event, Obs, Recorder};
use sec_traversal::{check_equivalence, TraversalOptions, TraversalOutcome};
use std::fmt;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

pub use sec_limits::{CancellationToken, Limits, ProgressCounter, Stop};

/// One member of the portfolio lineup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Signal correspondence with the BDD backend (the paper's method).
    BddCorr,
    /// Signal correspondence with the SAT backend.
    SatCorr,
    /// Bounded model checking — refutation only.
    Bmc,
    /// Exact symbolic traversal — complete, but state-space bound.
    Traversal,
}

impl EngineKind {
    /// Every engine, in the default lineup order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::BddCorr,
        EngineKind::SatCorr,
        EngineKind::Bmc,
        EngineKind::Traversal,
    ];

    /// Stable lowercase name, used in progress events and `--json`.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::BddCorr => "bdd-corr",
            EngineKind::SatCorr => "sat-corr",
            EngineKind::Bmc => "bmc",
            EngineKind::Traversal => "traversal",
        }
    }

    /// Parses a [`name`](EngineKind::name) back into the engine.
    pub fn from_name(s: &str) -> Option<EngineKind> {
        EngineKind::ALL.iter().copied().find(|e| e.name() == s)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Options of the portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOptions {
    /// The lineup. All engines share one option set, so a duplicate
    /// entry is just wasted work.
    pub engines: Vec<EngineKind>,
    /// Global wall-clock budget for the whole race.
    pub timeout: Option<Duration>,
    /// Optional per-engine budget, capped by the global one. An engine
    /// that exhausts it drops out; the race continues.
    pub engine_timeout: Option<Duration>,
    /// RNG seed forwarded to the correspondence engines.
    pub seed: u64,
    /// Worker threads of the SAT correspondence engine's sharded
    /// refinement rounds (forwarded to [`sec_core::Options::jobs`]);
    /// `1` keeps that engine single-threaded.
    pub jobs: usize,
    /// Frame bound of the BMC engine.
    pub bmc_depth: usize,
    /// BDD node budget of the correspondence engines.
    pub node_limit: usize,
    /// BDD node budget of the traversal engine.
    pub traversal_node_limit: usize,
    /// Interval between `progress` heartbeat events emitted from every
    /// engine's hot loop (scoped to the engine's name). `None` — the
    /// default — emits none.
    pub progress_interval: Option<Duration>,
    /// Observability handle. The orchestrator emits the race timeline
    /// (`race.start`, `engine.spawn`, `engine.verdict`, `race.cancel`,
    /// `race.timeout`, `race.end`) on it directly; each engine gets a
    /// handle scoped to its [`EngineKind::name`], so every event an
    /// engine emits carries an `"engine"` attribution field.
    pub obs: Obs,
    /// External cancellation. The race runs on an internal token (so a
    /// definitive winner can stop the losers); cancelling this one
    /// trips the internal token on the orchestrator's next poll and the
    /// race returns `Unknown("cancelled")`. `sec serve` uses this to
    /// kill a portfolio job when its client disconnects.
    pub cancel: Option<CancellationToken>,
}

impl Default for PortfolioOptions {
    fn default() -> Self {
        PortfolioOptions {
            engines: EngineKind::ALL.to_vec(),
            timeout: Some(Duration::from_secs(600)),
            engine_timeout: None,
            seed: 0xEC98,
            jobs: 1,
            bmc_depth: 64,
            node_limit: 16 << 20,
            traversal_node_limit: 4 << 20,
            progress_interval: None,
            obs: Obs::off(),
            cancel: None,
        }
    }
}

/// A structured progress event, emitted in wall-clock order. `at` is
/// the offset from the start of the race.
#[derive(Clone, Debug)]
pub enum ProgressEvent {
    /// An engine's worker thread began running.
    Started {
        /// The engine.
        engine: EngineKind,
        /// Offset from the start of the race.
        at: Duration,
    },
    /// An engine completed more coarse work units (refinement rounds,
    /// BMC frames, image steps) since its last event.
    Iteration {
        /// The engine.
        engine: EngineKind,
        /// Total work units completed so far.
        iterations: u64,
        /// Offset from the start of the race.
        at: Duration,
    },
    /// An engine finished with a verdict (definitive or not).
    Finished {
        /// The engine.
        engine: EngineKind,
        /// `"equivalent"`, `"inequivalent"`, or the `Unknown` reason.
        verdict: String,
        /// Offset from the start of the race.
        at: Duration,
        /// Peak live BDD nodes (0 for SAT-only engines).
        peak_bdd_nodes: usize,
        /// SAT conflicts (0 for BDD-only engines).
        sat_conflicts: u64,
    },
    /// The first definitive verdict arrived; the remaining engines were
    /// asked to stop.
    Cancelling {
        /// The winning engine.
        winner: EngineKind,
        /// Offset from the start of the race.
        at: Duration,
    },
    /// The global deadline passed with no definitive verdict; every
    /// still-running engine was asked to stop.
    GlobalTimeout {
        /// Offset from the start of the race.
        at: Duration,
    },
}

/// What one engine reported when it finished.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// The engine.
    pub engine: EngineKind,
    /// Its verdict — sound, but only [`Verdict::Equivalent`] and
    /// [`Verdict::Inequivalent`] are definitive.
    pub verdict: Verdict,
    /// Coarse work units completed (refinement rounds, frames, image
    /// steps).
    pub iterations: u64,
    /// Equivalence classes created by counterexample-guided splitting
    /// (0 for the BMC and traversal engines).
    pub splits: u64,
    /// Peak live BDD nodes.
    pub peak_bdd_nodes: usize,
    /// SAT conflicts.
    pub sat_conflicts: u64,
    /// SAT solvers constructed (1 per fixed point on the incremental
    /// path, one per refinement round on the monolithic path).
    pub sat_solver_constructions: u64,
    /// Individual SAT solve calls.
    pub sat_solver_calls: u64,
    /// The engine's own wall-clock time.
    pub time: Duration,
}

impl EngineReport {
    /// The canonical JSON object of the report, built on the same
    /// [`JsonObject`] the `sec-core` stats renderer uses. Counterexample
    /// traces are not embedded — the race's winning verdict carries the
    /// trace; per-engine reports only label their outcome.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new().str("name", self.engine.name());
        obj = match &self.verdict {
            Verdict::Equivalent => obj.str("verdict", "equivalent"),
            Verdict::Inequivalent(_) => obj.str("verdict", "inequivalent"),
            Verdict::Unknown(reason) => obj.str("verdict", "unknown").str("reason", reason),
            _ => obj.str("verdict", "unknown"),
        };
        obj.u64("iterations", self.iterations)
            .u64("splits", self.splits)
            .usize("peak_bdd_nodes", self.peak_bdd_nodes)
            .u64("sat_conflicts", self.sat_conflicts)
            .u64("sat_solver_constructions", self.sat_solver_constructions)
            .u64("sat_solver_calls", self.sat_solver_calls)
            .u64("time_ms", self.time.as_millis() as u64)
            .finish()
    }
}

/// The outcome of a portfolio race.
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// The winning verdict, or `Unknown` with the per-engine reasons
    /// when no engine was definitive.
    pub verdict: Verdict,
    /// The engine that produced the winning verdict.
    pub winner: Option<EngineKind>,
    /// One report per lineup member, in lineup order.
    pub reports: Vec<EngineReport>,
    /// Every progress event, in the order it was observed.
    pub events: Vec<ProgressEvent>,
    /// Total wall-clock time of the race.
    pub time: Duration,
}

/// Whether a verdict decides the instance (and should win the race).
fn definitive(v: &Verdict) -> bool {
    !matches!(v, Verdict::Unknown(_))
}

/// Races the configured engine lineup on `spec` vs `impl_` and returns
/// the first definitive verdict.
///
/// # Errors
///
/// Returns [`SecError::Build`] when the interfaces mismatch or a
/// circuit is malformed — checked up front, before any engine starts.
pub fn run(spec: &Aig, impl_: &Aig, opts: &PortfolioOptions) -> Result<PortfolioResult, SecError> {
    run_with_events(spec, impl_, opts, |_| {})
}

/// Like [`run`], but invokes `on_event` for every [`ProgressEvent`] as
/// it is observed (from the orchestrator thread, in order).
///
/// # Errors
///
/// Returns [`SecError::Build`] when the interfaces mismatch or a
/// circuit is malformed.
pub fn run_with_events(
    spec: &Aig,
    impl_: &Aig,
    opts: &PortfolioOptions,
    mut on_event: impl FnMut(&ProgressEvent),
) -> Result<PortfolioResult, SecError> {
    // Validate once, up front, so engine threads cannot fail to build.
    check_circuit(spec).map_err(BuildError::from)?;
    check_circuit(impl_).map_err(BuildError::from)?;
    ProductMachine::build(spec, impl_).map_err(BuildError::from)?;

    // Tee a race-wide recorder *before* the per-engine scoping below,
    // so every engine's counters accumulate into it and the terminal
    // unscoped `stats.snapshot` covers the whole race. Zero cost when
    // observability is off.
    let race_recorder = Recorder::new();
    let teed;
    let opts = if opts.obs.is_enabled() {
        teed = PortfolioOptions {
            obs: opts.obs.and_sink(Arc::new(race_recorder.clone())),
            ..opts.clone()
        };
        &teed
    } else {
        opts
    };

    let start = Instant::now();
    let global_deadline = opts.timeout.map(|t| start + t);
    let engine_budget = match (opts.engine_timeout, opts.timeout) {
        (Some(e), Some(g)) => Some(e.min(g)),
        (Some(e), None) => Some(e),
        (None, g) => g,
    };
    let token = CancellationToken::new();
    let obs = &opts.obs;
    event!(obs, "race.start", engines = lineup_names(&opts.engines));

    let mut events: Vec<ProgressEvent> = Vec::new();
    let mut reports: Vec<EngineReport> = Vec::new();
    let mut winner: Option<EngineKind> = None;
    let mut final_verdict: Option<Verdict> = None;

    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<Msg>();
        let counters: Vec<ProgressCounter> = opts
            .engines
            .iter()
            .map(|_| ProgressCounter::new())
            .collect();
        for (&engine, counter) in opts.engines.iter().zip(&counters) {
            let tx = tx.clone();
            let token = token.clone();
            let counter = counter.clone();
            event!(obs, "engine.spawn", engine = engine.name());
            // Everything the engine emits carries its name.
            let eobs = opts.obs.scoped(engine.name());
            s.spawn(move || {
                let _ = tx.send(Msg::Started(engine, start.elapsed()));
                let report = run_engine(
                    engine,
                    spec,
                    impl_,
                    opts,
                    &token,
                    &counter,
                    engine_budget,
                    eobs,
                );
                let _ = tx.send(Msg::Done(Box::new(report), start.elapsed()));
            });
        }
        drop(tx);

        let mut last_seen: Vec<u64> = vec![0; counters.len()];
        let mut timed_out = false;
        let mut externally_cancelled = false;
        let mut remaining = opts.engines.len();
        while remaining > 0 {
            let msg = rx.recv_timeout(Duration::from_millis(20));
            // Surface iteration progress regardless of what woke us.
            let at = start.elapsed();
            for ((&engine, counter), seen) in opts.engines.iter().zip(&counters).zip(&mut last_seen)
            {
                let now = counter.get();
                if now > *seen {
                    *seen = now;
                    let ev = ProgressEvent::Iteration {
                        engine,
                        iterations: now,
                        at,
                    };
                    on_event(&ev);
                    events.push(ev);
                }
            }
            match msg {
                Ok(Msg::Started(engine, at)) => {
                    let ev = ProgressEvent::Started { engine, at };
                    on_event(&ev);
                    events.push(ev);
                }
                Ok(Msg::Done(report, at)) => {
                    remaining -= 1;
                    let ev = ProgressEvent::Finished {
                        engine: report.engine,
                        verdict: verdict_label(&report.verdict),
                        at,
                        peak_bdd_nodes: report.peak_bdd_nodes,
                        sat_conflicts: report.sat_conflicts,
                    };
                    event!(
                        obs,
                        "engine.verdict",
                        engine = report.engine.name(),
                        verdict = verdict_label(&report.verdict),
                        iterations = report.iterations
                    );
                    on_event(&ev);
                    events.push(ev);
                    if winner.is_none() && definitive(&report.verdict) {
                        winner = Some(report.engine);
                        final_verdict = Some(report.verdict.clone());
                        token.cancel();
                        event!(obs, "race.cancel", winner = report.engine.name());
                        let ev = ProgressEvent::Cancelling {
                            winner: report.engine,
                            at: start.elapsed(),
                        };
                        on_event(&ev);
                        events.push(ev);
                    }
                    reports.push(*report);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            // External cancellation (e.g. the serve client hung up):
            // trip the internal token so every engine winds down.
            if !externally_cancelled && winner.is_none() {
                if let Some(ext) = &opts.cancel {
                    if ext.is_cancelled() {
                        externally_cancelled = true;
                        token.cancel();
                        event!(obs, "race.cancelled");
                    }
                }
            }
            // Belt and braces: each engine carries its own deadline, but
            // the orchestrator also enforces the global one so a race
            // never outlives its budget by more than a poll interval.
            if !timed_out && winner.is_none() {
                if let Some(end) = global_deadline {
                    if Instant::now() >= end {
                        timed_out = true;
                        token.cancel();
                        event!(obs, "race.timeout");
                        let ev = ProgressEvent::GlobalTimeout {
                            at: start.elapsed(),
                        };
                        on_event(&ev);
                        events.push(ev);
                    }
                }
            }
        }
    });

    // Lineup order, for deterministic reports independent of finish
    // order.
    reports.sort_by_key(|r| {
        opts.engines
            .iter()
            .position(|&e| e == r.engine)
            .unwrap_or(usize::MAX)
    });

    let verdict = match final_verdict {
        Some(v) => v,
        None => Verdict::Unknown(degradation_reason(&reports)),
    };
    // Terminal unscoped snapshot: a trace of the race is self-contained
    // (includes every engine's counters via the shared recorder).
    emit_snapshot(obs, &race_recorder, "race");
    event!(
        obs,
        "race.end",
        winner = winner.map(|w| w.name()).unwrap_or("none"),
        verdict = verdict_label(&verdict)
    );
    Ok(PortfolioResult {
        verdict,
        winner,
        reports,
        events,
        time: start.elapsed(),
    })
}

fn lineup_names(engines: &[EngineKind]) -> String {
    engines
        .iter()
        .map(|e| e.name())
        .collect::<Vec<_>>()
        .join(",")
}

enum Msg {
    Started(EngineKind, Duration),
    Done(Box<EngineReport>, Duration),
}

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Equivalent => "equivalent".to_string(),
        Verdict::Inequivalent(_) => "inequivalent".to_string(),
        Verdict::Unknown(r) => format!("unknown: {r}"),
        // `Verdict` is non-exhaustive; treat future refinements as
        // non-definitive until this crate learns about them.
        _ => "unknown".to_string(),
    }
}

/// The `Unknown` reason when every engine dropped out.
fn degradation_reason(reports: &[EngineReport]) -> String {
    let parts: Vec<String> = reports
        .iter()
        .filter_map(|r| match &r.verdict {
            Verdict::Unknown(reason) => Some(format!("{}: {}", r.engine, reason)),
            _ => None,
        })
        .collect();
    format!("no engine was definitive — {}", parts.join("; "))
}

/// Copies every stat a [`CheckStats`](sec_core::CheckStats) carries
/// into the report — the single place where the two schemas meet.
fn fill_from_stats(report: &mut EngineReport, stats: &sec_core::CheckStats) {
    report.iterations = stats.iterations as u64;
    report.splits = stats.splits;
    report.peak_bdd_nodes = stats.peak_bdd_nodes;
    report.sat_conflicts = stats.sat_conflicts;
    report.sat_solver_constructions = stats.sat_solver_constructions as u64;
    report.sat_solver_calls = stats.sat_solver_calls;
}

/// Runs one engine to completion (or cancellation) on the caller's
/// thread.
#[allow(clippy::too_many_arguments)]
fn run_engine(
    engine: EngineKind,
    spec: &Aig,
    impl_: &Aig,
    opts: &PortfolioOptions,
    token: &CancellationToken,
    counter: &ProgressCounter,
    budget: Option<Duration>,
    obs: Obs,
) -> EngineReport {
    let t0 = Instant::now();
    let mut report = EngineReport {
        engine,
        verdict: Verdict::Unknown("not run".to_string()),
        iterations: 0,
        splits: 0,
        peak_bdd_nodes: 0,
        sat_conflicts: 0,
        sat_solver_constructions: 0,
        sat_solver_calls: 0,
        time: Duration::ZERO,
    };
    match engine {
        EngineKind::BddCorr | EngineKind::SatCorr => {
            let copts = OptionsBuilder::new()
                .backend(if engine == EngineKind::BddCorr {
                    Backend::Bdd
                } else {
                    Backend::Sat
                })
                .seed(opts.seed)
                .jobs(opts.jobs)
                .node_limit(opts.node_limit)
                .timeout(budget)
                // Refutation belongs to the dedicated BMC engine, so a
                // win always names the method that decided.
                .sim_refute(false)
                .bmc_depth(0)
                .cancel(Some(token.clone()))
                .progress(Some(counter.clone()))
                .progress_interval(opts.progress_interval)
                .obs(obs)
                .build();
            match Checker::new(spec, impl_, copts) {
                Ok(checker) => {
                    let r = checker.run();
                    report.verdict = r.verdict;
                    fill_from_stats(&mut report, &r.stats);
                }
                Err(e) => report.verdict = Verdict::Unknown(format!("build error: {e}")),
            }
        }
        EngineKind::Bmc => {
            let copts = OptionsBuilder::new()
                .seed(opts.seed)
                .bmc_depth(opts.bmc_depth.max(1))
                .timeout(budget)
                .cancel(Some(token.clone()))
                .progress(Some(counter.clone()))
                .progress_interval(opts.progress_interval)
                .obs(obs)
                .build();
            match bmc_refute(spec, impl_, &copts) {
                Ok(r) => {
                    report.verdict = r.verdict;
                    fill_from_stats(&mut report, &r.stats);
                }
                Err(e) => report.verdict = Verdict::Unknown(format!("build error: {e}")),
            }
        }
        EngineKind::Traversal => {
            let topts = TraversalOptions {
                node_limit: opts.traversal_node_limit,
                max_iterations: usize::MAX,
                register_correspondence: true,
                sift: false,
                timeout: budget,
                cancel: Some(token.clone()),
                progress: Some(counter.clone()),
                progress_interval: opts.progress_interval,
                obs,
            };
            match check_equivalence(spec, impl_, &topts) {
                Ok((outcome, stats)) => {
                    report.verdict = match outcome {
                        TraversalOutcome::Equivalent => Verdict::Equivalent,
                        TraversalOutcome::Inequivalent(trace) => Verdict::Inequivalent(trace),
                        TraversalOutcome::ResourceOut(reason) => Verdict::Unknown(reason),
                    };
                    report.iterations = stats.iterations as u64;
                    report.peak_bdd_nodes = stats.peak_nodes;
                }
                Err(e) => report.verdict = Verdict::Unknown(format!("build error: {e}")),
            }
        }
    }
    report.time = t0.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::{counter, CounterKind};

    #[test]
    fn engine_names_round_trip() {
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::from_name(e.name()), Some(e));
            assert_eq!(e.to_string(), e.name());
        }
        assert_eq!(EngineKind::from_name("nope"), None);
    }

    #[test]
    fn identical_circuits_are_proven_by_some_engine() {
        let spec = counter(4, CounterKind::Binary);
        let r = run(&spec, &spec.clone(), &PortfolioOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Equivalent);
        let w = r.winner.expect("a definitive verdict names its engine");
        assert_ne!(w, EngineKind::Bmc, "BMC cannot prove equivalence");
        assert_eq!(r.reports.len(), 4);
    }

    #[test]
    fn build_error_surfaces_before_any_engine_runs() {
        let a = counter(4, CounterKind::Binary);
        let mut b = counter(4, CounterKind::Binary);
        b.add_input("extra");
        let e = run(&a, &b, &PortfolioOptions::default()).unwrap_err();
        assert!(matches!(e, SecError::Build(BuildError::Product(_))));
    }

    #[test]
    fn empty_lineup_degrades_to_unknown() {
        let spec = counter(3, CounterKind::Binary);
        let opts = PortfolioOptions {
            engines: vec![],
            ..PortfolioOptions::default()
        };
        let r = run(&spec, &spec.clone(), &opts).unwrap();
        assert!(matches!(r.verdict, Verdict::Unknown(_)));
        assert!(r.winner.is_none());
    }

    #[test]
    fn events_are_emitted_in_order() {
        let spec = counter(4, CounterKind::Binary);
        let mut n = 0usize;
        let r = run_with_events(&spec, &spec.clone(), &PortfolioOptions::default(), |_| {
            n += 1;
        })
        .unwrap();
        assert_eq!(n, r.events.len());
        // Every engine must have a Started and a Finished event.
        for e in EngineKind::ALL {
            assert!(r
                .events
                .iter()
                .any(|ev| matches!(ev, ProgressEvent::Started { engine, .. } if *engine == e)));
            assert!(r
                .events
                .iter()
                .any(|ev| matches!(ev, ProgressEvent::Finished { engine, .. } if *engine == e)));
        }
        // Exactly one Cancelling event, naming the winner.
        let cancels: Vec<_> = r
            .events
            .iter()
            .filter_map(|ev| match ev {
                ProgressEvent::Cancelling { winner, .. } => Some(*winner),
                _ => None,
            })
            .collect();
        assert_eq!(cancels, vec![r.winner.unwrap()]);
    }
}
