//! # sec-bdd
//!
//! A from-scratch ROBDD package in the style of the BDD engines of the
//! 1990s verification tools (and of the Eindhoven package used by the
//! original experiments):
//!
//! * complement edges (negation is free; `f == !g` is a pointer check);
//! * per-variable unique subtables with a shared computed-table cache;
//! * explicit mark-and-sweep garbage collection ([`BddManager::gc`]);
//! * sifting-based dynamic reordering ([`BddManager::sift`]) that keeps
//!   all handles valid;
//! * a configurable node limit: operations return [`BddHalt`] instead
//!   of exhausting memory, mirroring the 100 MB cap of the original
//!   experiments;
//! * quantification ([`exists`](BddManager::exists),
//!   [`and_exists`](BddManager::and_exists)) and simultaneous
//!   [composition](BddManager::compose) for image computation and
//!   next-state function construction.
//!
//! ## Example
//!
//! ```
//! use sec_bdd::{Bdd, BddManager};
//!
//! let mut m = BddManager::new();
//! let v = m.add_vars(3);
//! let x = m.var(v[0]);
//! let y = m.var(v[1]);
//! let z = m.var(v[2]);
//!
//! // f = (x ∧ y) ∨ z; quantifying y away leaves x ∨ z.
//! let xy = m.and(x, y)?;
//! let f = m.or(xy, z)?;
//! let e = m.exists(f, &[v[1]])?;
//! let xz = m.or(x, z)?;
//! assert_eq!(e, xz);
//! # Ok::<(), sec_bdd::BddHalt>(())
//! ```

#![warn(missing_docs)]

mod analyze;
mod cache;
mod compose;
mod dot;
mod manager;
mod node;
mod ops;
mod quant;
mod reorder;

pub use compose::Substitution;
pub use manager::{BddHalt, BddManager, BddResult};
pub use node::{Bdd, BddVar};
