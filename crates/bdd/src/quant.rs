//! Quantification: `exists`, `forall`, and the fused relational product
//! `and_exists` used by image computation.

use crate::cache::{OP_AND_EXISTS, OP_EXISTS};
use crate::manager::{BddManager, BddResult};
use crate::node::{Bdd, BddVar};

impl BddManager {
    /// Builds the positive cube `v₁ ∧ v₂ ∧ …` over a set of variables,
    /// the canonical representation of a quantification set.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`](crate::BddHalt) on node-limit overflow
    /// (as do all quantification operations).
    pub fn cube(&mut self, vars: &[BddVar]) -> BddResult {
        let mut sorted: Vec<BddVar> = vars.to_vec();
        sorted.sort_by_key(|v| std::cmp::Reverse(self.level_of(*v)));
        let mut c = Bdd::ONE;
        for v in sorted {
            c = self.mk(v.0, c, Bdd::ZERO)?;
        }
        Ok(c)
    }

    /// Existential quantification: `∃ vars . f`.
    pub fn exists(&mut self, f: Bdd, vars: &[BddVar]) -> BddResult {
        let cube = self.cube(vars)?;
        self.exists_cube(f, cube)
    }

    /// Universal quantification: `∀ vars . f`.
    pub fn forall(&mut self, f: Bdd, vars: &[BddVar]) -> BddResult {
        let cube = self.cube(vars)?;
        Ok(!self.exists_cube(!f, cube)?)
    }

    /// Existential quantification with a pre-built positive cube.
    pub fn exists_cube(&mut self, f: Bdd, cube: Bdd) -> BddResult {
        if f.is_const() || cube == Bdd::ONE {
            return Ok(f);
        }
        // Skip cube variables above f's top variable.
        let lf = self.level(f);
        let mut c = cube;
        while c != Bdd::ONE && self.level(c) < lf {
            c = self.cofactors(c).0;
        }
        if c == Bdd::ONE {
            return Ok(f);
        }
        if let Some(r) = self.cache.get(OP_EXISTS, f, c, Bdd::ONE) {
            return Ok(r);
        }
        let (f1, f0) = self.cofactors(f);
        let r = if self.level(c) == lf {
            let rest = self.cofactors(c).0;
            let r0 = self.exists_cube(f0, rest)?;
            if r0 == Bdd::ONE {
                Bdd::ONE
            } else {
                let r1 = self.exists_cube(f1, rest)?;
                self.or(r0, r1)?
            }
        } else {
            let var = self.top_var(f);
            let r1 = self.exists_cube(f1, c)?;
            let r0 = self.exists_cube(f0, c)?;
            self.mk(var.0, r1, r0)?
        };
        self.cache.put(OP_EXISTS, f, c, Bdd::ONE, r);
        Ok(r)
    }

    /// The relational product `∃ cube . f ∧ g`, computed without building
    /// the full conjunction — the key primitive of symbolic image
    /// computation.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> BddResult {
        if f == Bdd::ZERO || g == Bdd::ZERO || f == !g {
            return Ok(Bdd::ZERO);
        }
        if f == Bdd::ONE || f == g {
            return self.exists_cube(g, cube);
        }
        if g == Bdd::ONE {
            return self.exists_cube(f, cube);
        }
        let top = self.level(f).min(self.level(g));
        let mut c = cube;
        while c != Bdd::ONE && self.level(c) < top {
            c = self.cofactors(c).0;
        }
        if c == Bdd::ONE {
            return self.and(f, g);
        }
        // Normalize operand order for the cache.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(r) = self.cache.get(OP_AND_EXISTS, f, g, c) {
            return Ok(r);
        }
        let (f1, f0) = self.cofactors_at(f, top);
        let (g1, g0) = self.cofactors_at(g, top);
        let r = if self.level(c) == top {
            let rest = self.cofactors(c).0;
            let r0 = self.and_exists(f0, g0, rest)?;
            if r0 == Bdd::ONE {
                Bdd::ONE
            } else {
                let r1 = self.and_exists(f1, g1, rest)?;
                self.or(r0, r1)?
            }
        } else {
            let var = self.var_at_level[top];
            let r1 = self.and_exists(f1, g1, c)?;
            let r0 = self.and_exists(f0, g0, c)?;
            self.mk(var, r1, r0)?
        };
        self.cache.put(OP_AND_EXISTS, f, g, c, r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_removes_support() {
        let mut m = BddManager::new();
        let v = m.add_vars(3);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let z = m.var(v[2]);
        let xy = m.and(x, y).unwrap();
        let f = m.or(xy, z).unwrap();
        let e = m.exists(f, &[v[1]]).unwrap();
        // ∃y. xy + z = x + z
        let expect = m.or(x, z).unwrap();
        assert_eq!(e, expect);
        assert!(m.support(e).iter().all(|&s| s != v[1]));
    }

    #[test]
    fn forall_is_dual() {
        let mut m = BddManager::new();
        let v = m.add_vars(2);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let f = m.or(x, y).unwrap();
        // ∀y. x + y = x
        assert_eq!(m.forall(f, &[v[1]]).unwrap(), x);
        // ∀y. x·y = 0
        let g = m.and(x, y).unwrap();
        assert_eq!(m.forall(g, &[v[1]]).unwrap(), Bdd::ZERO);
    }

    #[test]
    fn exists_multiple_vars() {
        let mut m = BddManager::new();
        let v = m.add_vars(4);
        let lits: Vec<Bdd> = v.iter().map(|&x| m.var(x)).collect();
        let f = m.and_many(&lits).unwrap();
        let e = m.exists(f, &v[1..3]).unwrap();
        let expect = m.and(lits[0], lits[3]).unwrap();
        assert_eq!(e, expect);
        // Quantifying everything in a satisfiable function yields ONE.
        assert_eq!(m.exists(f, &v).unwrap(), Bdd::ONE);
        assert_eq!(m.exists(Bdd::ZERO, &v).unwrap(), Bdd::ZERO);
    }

    #[test]
    fn and_exists_matches_composition() {
        let mut m = BddManager::new();
        let v = m.add_vars(5);
        // f = (x0 ^ x1) | x2 ; g = (x1 & x3) | x4 ; quantify {x1, x3}
        let x: Vec<Bdd> = v.iter().map(|&w| m.var(w)).collect();
        let t = m.xor(x[0], x[1]).unwrap();
        let f = m.or(t, x[2]).unwrap();
        let u = m.and(x[1], x[3]).unwrap();
        let g = m.or(u, x[4]).unwrap();
        let cube = m.cube(&[v[1], v[3]]).unwrap();
        let fused = m.and_exists(f, g, cube).unwrap();
        let conj = m.and(f, g).unwrap();
        let split = m.exists(conj, &[v[1], v[3]]).unwrap();
        assert_eq!(fused, split);
    }

    #[test]
    fn cube_is_sorted_conjunction() {
        let mut m = BddManager::new();
        let v = m.add_vars(3);
        let c1 = m.cube(&[v[2], v[0]]).unwrap();
        let c2 = m.cube(&[v[0], v[2]]).unwrap();
        assert_eq!(c1, c2);
        let x0 = m.var(v[0]);
        let x2 = m.var(v[2]);
        let expect = m.and(x0, x2).unwrap();
        assert_eq!(c1, expect);
    }
}
