//! The computed-table cache: a direct-mapped table of operation results.

use crate::node::Bdd;

pub(crate) const OP_ITE: u32 = 1;
pub(crate) const OP_EXISTS: u32 = 2;
pub(crate) const OP_AND_EXISTS: u32 = 3;

#[derive(Copy, Clone)]
struct Entry {
    op: u32,
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

const EMPTY: Entry = Entry {
    op: 0,
    f: 0,
    g: 0,
    h: 0,
    r: 0,
};

pub(crate) struct Cache {
    entries: Vec<Entry>,
    mask: usize,
    hits: u64,
    misses: u64,
}

#[inline]
fn mix(op: u32, f: u32, g: u32, h: u32) -> u64 {
    let mut x = (f as u64) | ((g as u64) << 32);
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= (h as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (op as u64).rotate_left(17);
    x ^= x >> 31;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 29)
}

impl Cache {
    /// Creates a cache with `2^log2_size` entries.
    pub(crate) fn new(log2_size: u32) -> Cache {
        let size = 1usize << log2_size;
        Cache {
            entries: vec![EMPTY; size],
            mask: size - 1,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    pub(crate) fn get(&mut self, op: u32, f: Bdd, g: Bdd, h: Bdd) -> Option<Bdd> {
        let i = (mix(op, f.0, g.0, h.0) as usize) & self.mask;
        let e = &self.entries[i];
        if e.op == op && e.f == f.0 && e.g == g.0 && e.h == h.0 {
            self.hits += 1;
            Some(Bdd(e.r))
        } else {
            self.misses += 1;
            None
        }
    }

    #[inline]
    pub(crate) fn put(&mut self, op: u32, f: Bdd, g: Bdd, h: Bdd, r: Bdd) {
        let i = (mix(op, f.0, g.0, h.0) as usize) & self.mask;
        self.entries[i] = Entry {
            op,
            f: f.0,
            g: g.0,
            h: h.0,
            r: r.0,
        };
    }

    pub(crate) fn clear(&mut self) {
        self.entries.fill(EMPTY);
    }

    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut c = Cache::new(8);
        let f = Bdd(10);
        let g = Bdd(12);
        let h = Bdd(14);
        assert_eq!(c.get(OP_ITE, f, g, h), None);
        c.put(OP_ITE, f, g, h, Bdd(99));
        assert_eq!(c.get(OP_ITE, f, g, h), Some(Bdd(99)));
        // Different op must miss.
        assert_eq!(c.get(OP_EXISTS, f, g, h), None);
    }

    #[test]
    fn clear_empties() {
        let mut c = Cache::new(4);
        c.put(OP_AND_EXISTS, Bdd(2), Bdd(4), Bdd(6), Bdd(8));
        c.clear();
        assert_eq!(c.get(OP_AND_EXISTS, Bdd(2), Bdd(4), Bdd(6)), None);
    }
}
