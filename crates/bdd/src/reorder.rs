//! Dynamic variable reordering by sifting (Rudell's algorithm).
//!
//! The original implementation "uses dynamic variable ordering to control
//! the BDD variable ordering"; this module provides the same capability.
//! An adjacent-level swap rebuilds the nodes of the upper variable **in
//! place**, so every existing [`Bdd`] handle keeps denoting the same
//! function across reordering — only the shape of the graphs changes.

use crate::manager::BddManager;
use crate::node::{Bdd, NIL};

impl BddManager {
    fn subtable_nodes(&self, var: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.subtables[var as usize].count());
        for b in 0..self.subtables[var as usize].num_buckets() {
            let mut cur = self.subtables[var as usize].bucket_head(b);
            while cur != NIL {
                out.push(cur);
                cur = self.nodes[cur as usize].next;
            }
        }
        out
    }

    /// Swaps the variables at `level` and `level + 1` in the order.
    ///
    /// All handles keep their meaning. Never fails: the node limit is
    /// ignored during the swap (growth is bounded by twice the upper
    /// subtable).
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid level.
    pub fn swap_levels(&mut self, level: usize) {
        assert!(level + 1 < self.num_vars(), "swap_levels out of range");
        let x = self.var_at_level[level];
        let y = self.var_at_level[level + 1];

        let x_nodes = self.subtable_nodes(x);
        self.clear_subtable(x);

        let mut affected = Vec::new();
        for idx in x_nodes {
            let n = self.nodes[idx as usize];
            let hi_is_y = self.nodes[n.high.index()].var == y;
            let lo_is_y = self.nodes[n.low.index()].var == y;
            if hi_is_y || lo_is_y {
                affected.push(idx);
            } else {
                self.reinsert(x, idx);
            }
        }

        for idx in affected {
            let n = self.nodes[idx as usize];
            // f = x·f1 + x̄·f0 with f1 = n.high (regular), f0 = n.low.
            let f1 = n.high;
            let f0 = n.low;
            let (f11, f10) = self.cofactors_wrt(f1, y);
            let (f01, f00) = self.cofactors_wrt(f0, y);
            // f = y·(x·f11 + x̄·f01) + ȳ·(x·f10 + x̄·f00)
            let a = self
                .mk_unbounded(x, f11, f01)
                .expect("mk_unbounded cannot overflow");
            let b = self
                .mk_unbounded(x, f10, f00)
                .expect("mk_unbounded cannot overflow");
            debug_assert!(!a.is_complemented(), "rebuilt high edge must be regular");
            debug_assert_ne!(a, b, "rebuilt node cannot be redundant");
            {
                let node = &mut self.nodes[idx as usize];
                node.var = y;
                node.high = a;
                node.low = b;
            }
            self.reinsert(y, idx);
        }

        self.var_at_level[level] = y;
        self.var_at_level[level + 1] = x;
        self.level_of_var[x as usize] = (level + 1) as u32;
        self.level_of_var[y as usize] = level as u32;
    }

    /// Cofactors of an edge with respect to a specific variable, which is
    /// at or below the edge's top level.
    fn cofactors_wrt(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        let n = &self.nodes[f.index()];
        if n.var == var {
            let c = f.is_complemented();
            (n.high.complement_if(c), n.low.complement_if(c))
        } else {
            (f, f)
        }
    }

    /// Sifts every variable to its locally optimal level, keeping
    /// everything reachable from `roots` alive. Returns the live node
    /// count after a final garbage collection.
    ///
    /// Variables are processed in decreasing subtable size; a sift
    /// direction is abandoned when the table grows past `max_growth`
    /// times the best size seen (2.0 is a reasonable value).
    pub fn sift(&mut self, roots: &[Bdd], max_growth: f64) -> usize {
        self.gc(roots);
        let n = self.num_vars();
        if n < 2 {
            return self.live_nodes();
        }
        let mut vars: Vec<u32> = (0..n as u32).collect();
        vars.sort_by_key(|&v| std::cmp::Reverse(self.subtables[v as usize].count()));
        for v in vars {
            self.sift_var(v, max_growth, roots);
            self.gc(roots);
        }
        self.gc(roots)
    }

    /// The live-node count as seen by sifting. Swaps leave orphaned nodes
    /// behind, so the raw count over-estimates; for small managers we
    /// collect on every measurement (exact sizes), for large ones only
    /// when garbage exceeds ~12% (bounded bias, far fewer collections).
    fn measured_size(&mut self, roots: &[Bdd]) -> usize {
        let live = self.live_nodes();
        let exact = self.last_gc_live < 50_000;
        let slack = if exact { 0 } else { self.last_gc_live / 8 };
        if live > self.last_gc_live + slack {
            self.gc(roots)
        } else {
            live
        }
    }

    fn sift_var(&mut self, v: u32, max_growth: f64, roots: &[Bdd]) {
        let n = self.num_vars();
        let start = self.level_of_var[v as usize] as usize;
        let mut best_size = self.measured_size(roots);
        let mut best_level = start;
        let limit = |best: usize| ((best as f64) * max_growth) as usize + 64;

        // Move toward the closer end first to reduce swap work.
        let down_first = start >= n / 2;
        let mut cur = start;
        for phase in 0..2 {
            let down = down_first == (phase == 0);
            loop {
                if down {
                    if cur + 1 >= n {
                        break;
                    }
                    self.swap_levels(cur);
                    cur += 1;
                } else {
                    if cur == 0 {
                        break;
                    }
                    self.swap_levels(cur - 1);
                    cur -= 1;
                }
                let size = self.measured_size(roots);
                if size < best_size {
                    best_size = size;
                    best_level = cur;
                }
                if size > limit(best_size) {
                    break;
                }
            }
            // Return to start position between phases (and to best at end).
            let target = if phase == 0 { start } else { best_level };
            while cur < target {
                self.swap_levels(cur);
                cur += 1;
            }
            while cur > target {
                self.swap_levels(cur - 1);
                cur -= 1;
            }
        }
    }

    /// Reorders so that `order[i]` is the variable at level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all variables.
    pub fn set_order(&mut self, order: &[crate::BddVar]) {
        assert_eq!(order.len(), self.num_vars(), "order must cover all vars");
        let mut seen = vec![false; self.num_vars()];
        for v in order {
            assert!(!seen[v.id()], "duplicate variable in order");
            seen[v.id()] = true;
        }
        // Selection-sort with adjacent swaps: O(n²) swaps worst case but
        // simple and correct.
        for (target, var) in order.iter().enumerate() {
            let want = var.0;
            let mut at = self.level_of_var[want as usize] as usize;
            while at > target {
                self.swap_levels(at - 1);
                at -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BddVar;

    /// Builds the interleaved-equality function (x0=y0)·(x1=y1)·… whose
    /// size is linear under interleaved order and exponential under
    /// separated order — the classic reordering benchmark.
    fn equality(m: &mut BddManager, k: usize) -> (Bdd, Vec<BddVar>, Vec<BddVar>) {
        let xs = m.add_vars(k);
        let ys = m.add_vars(k);
        let mut f = Bdd::ONE;
        for i in 0..k {
            let e = m.xnor(m.var(xs[i]), m.var(ys[i])).unwrap();
            f = m.and(f, e).unwrap();
        }
        (f, xs, ys)
    }

    fn all_assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1u32 << n).map(move |bits| (0..n).map(|i| bits >> i & 1 != 0).collect())
    }

    #[test]
    fn swap_preserves_functions() {
        let mut m = BddManager::new();
        let (f, ..) = equality(&mut m, 3);
        let expected: Vec<bool> = all_assignments(6).map(|a| m.eval(f, &a)).collect();
        for l in 0..5 {
            m.swap_levels(l);
            let got: Vec<bool> = all_assignments(6).map(|a| m.eval(f, &a)).collect();
            assert_eq!(got, expected, "after swapping level {l}");
            assert!(m.check_canonical());
        }
    }

    #[test]
    fn swap_is_involutive_on_order() {
        let mut m = BddManager::new();
        let _ = equality(&mut m, 2);
        let before: Vec<u32> = m.var_at_level.clone();
        m.swap_levels(1);
        m.swap_levels(1);
        assert_eq!(m.var_at_level, before);
    }

    #[test]
    fn sift_shrinks_separated_equality() {
        let mut m = BddManager::new();
        // Order is x0 x1 x2 x3 y0 y1 y2 y3: exponential for equality.
        let (f, ..) = equality(&mut m, 4);
        let before = m.node_count(f);
        let expected: Vec<bool> = all_assignments(8).map(|a| m.eval(f, &a)).collect();
        m.sift(&[f], 2.0);
        let after = m.node_count(f);
        assert!(after < before, "sifting must shrink {before} -> {after}");
        let got: Vec<bool> = all_assignments(8).map(|a| m.eval(f, &a)).collect();
        assert_eq!(got, expected);
        assert!(m.check_canonical());
    }

    #[test]
    fn set_order_interleaves() {
        let mut m = BddManager::new();
        let (f, xs, ys) = equality(&mut m, 3);
        let expected: Vec<bool> = all_assignments(6).map(|a| m.eval(f, &a)).collect();
        let mut order = Vec::new();
        for i in 0..3 {
            order.push(xs[i]);
            order.push(ys[i]);
        }
        m.set_order(&order);
        for (lvl, v) in order.iter().enumerate() {
            assert_eq!(m.level_of(*v), lvl);
        }
        let got: Vec<bool> = all_assignments(6).map(|a| m.eval(f, &a)).collect();
        assert_eq!(got, expected);
        // Interleaved equality of width 3 has 3 levels of 3-ish nodes.
        assert!(m.node_count(f) <= 11, "size {}", m.node_count(f));
    }

    #[test]
    fn operations_work_after_reorder() {
        let mut m = BddManager::new();
        let (f, xs, ys) = equality(&mut m, 3);
        m.sift(&[f], 2.0);
        // Build something new after sifting and check semantics.
        let g = m.and(m.var(xs[0]), m.var(ys[2])).unwrap();
        let fg = m.and(f, g).unwrap();
        for a in all_assignments(6) {
            assert_eq!(m.eval(fg, &a), m.eval(f, &a) && a[0] && a[5]);
        }
    }
}
