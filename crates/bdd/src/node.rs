//! BDD handles and node storage.

use std::fmt;
use std::ops::Not;

/// A handle to a BDD function: a node index plus a complement bit.
///
/// Complement edges halve the node count and make negation free, at the
/// price of the canonical-form rule that a node's *high* edge is never
/// complemented. [`Bdd::ONE`] and [`Bdd::ZERO`] are the two polarities of
/// the single terminal node.
///
/// Handles are only meaningful together with the [`BddManager`] that
/// created them.
///
/// [`BddManager`]: crate::BddManager
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-true function.
    pub const ONE: Bdd = Bdd(0);
    /// The constant-false function.
    pub const ZERO: Bdd = Bdd(1);

    #[inline]
    pub(crate) fn new(index: u32, complement: bool) -> Bdd {
        Bdd((index << 1) | complement as u32)
    }

    /// The node index this handle points at.
    #[inline]
    pub(crate) fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge carries a complement.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this handle is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.index() == 0
    }

    /// Complements the handle iff `c` is true.
    #[inline]
    pub fn complement_if(self, c: bool) -> Bdd {
        Bdd(self.0 ^ c as u32)
    }

    /// Strips the complement bit (the "regular" version of the edge).
    #[inline]
    pub(crate) fn regular(self) -> Bdd {
        Bdd(self.0 & !1)
    }
}

impl Not for Bdd {
    type Output = Bdd;
    #[inline]
    fn not(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Bdd::ONE {
            write!(f, "⊤")
        } else if *self == Bdd::ZERO {
            write!(f, "⊥")
        } else if self.is_complemented() {
            write!(f, "!n{}", self.index())
        } else {
            write!(f, "n{}", self.index())
        }
    }
}

/// A BDD variable identifier. Variable ids are stable; their *position* in
/// the order may change under dynamic reordering.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddVar(pub(crate) u32);

impl BddVar {
    /// The raw id of this variable.
    #[inline]
    pub fn id(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable handle from a raw id. The id must have been
    /// produced by [`BddManager::add_var`](crate::BddManager::add_var).
    #[inline]
    pub fn from_id(id: usize) -> BddVar {
        BddVar(id as u32)
    }
}

impl fmt::Debug for BddVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Variable id stored in the terminal node.
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;
/// End-of-chain marker in unique-table buckets.
pub(crate) const NIL: u32 = u32::MAX;

/// A stored BDD node: `f = var · high + ¬var · low`, `high` never
/// complemented.
#[derive(Copy, Clone, Debug)]
pub(crate) struct NodeData {
    pub var: u32,
    pub high: Bdd,
    pub low: Bdd,
    /// Next node in the unique-table bucket chain (NIL-terminated), or the
    /// next slot in the free list for dead nodes.
    pub next: u32,
}
