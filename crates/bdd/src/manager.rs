//! The BDD manager: node storage, unique subtables, `mk`, garbage
//! collection and accounting.

use crate::cache::Cache;
use crate::node::{Bdd, BddVar, NodeData, NIL, TERMINAL_VAR};
use sec_limits::{Limits, Stop};
use sec_obs::Obs;
use std::fmt;

/// Error returned when an operation halts before producing a result:
/// either the manager's node limit would be exceeded, or the limits
/// attached via [`BddManager::set_limits`] asked the operation to stop
/// (cancellation or deadline).
///
/// The original experiments imposed a 100 MB memory cap on the BDD package;
/// the node limit plays the same role here. After a halt of either kind
/// the manager is still consistent and usable: garbage-collect and retry,
/// hand the result to another engine, or give up on the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BddHalt {
    /// A new node would exceed the configured live-node limit.
    Overflow {
        /// The configured live-node limit that was hit.
        limit: usize,
    },
    /// The attached [`Limits`] asked the operation to stop.
    Stopped(Stop),
}

impl fmt::Display for BddHalt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddHalt::Overflow { limit } => write!(f, "BDD node limit of {limit} exceeded"),
            BddHalt::Stopped(stop) => write!(f, "BDD operation stopped: {stop}"),
        }
    }
}

impl std::error::Error for BddHalt {}

impl From<Stop> for BddHalt {
    fn from(stop: Stop) -> BddHalt {
        BddHalt::Stopped(stop)
    }
}

/// Shorthand for results of BDD operations.
pub type BddResult = Result<Bdd, BddHalt>;

pub(crate) struct Subtable {
    buckets: Vec<u32>,
    count: usize,
}

#[inline]
fn hash_pair(a: u32, b: u32) -> u64 {
    let x = (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let y = (b as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    let mut h = x ^ y.rotate_left(31);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 32;
    h
}

impl Subtable {
    fn new() -> Subtable {
        Subtable {
            buckets: vec![NIL; 16],
            count: 0,
        }
    }

    #[inline]
    fn bucket(&self, high: Bdd, low: Bdd) -> usize {
        (hash_pair(high.0, low.0) as usize) & (self.buckets.len() - 1)
    }

    #[inline]
    pub(crate) fn count(&self) -> usize {
        self.count
    }

    #[inline]
    pub(crate) fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    pub(crate) fn bucket_head(&self, b: usize) -> u32 {
        self.buckets[b]
    }
}

/// An ROBDD manager with complement edges, per-variable unique subtables,
/// a computed-table cache, explicit mark-and-sweep garbage collection and
/// sifting-based dynamic reordering.
///
/// Garbage collection and reordering are *explicit*: the owner calls
/// [`BddManager::gc`] / [`BddManager::sift`] with the set of root functions
/// it needs preserved. Nothing runs behind the caller's back, so handles
/// never dangle mid-operation.
///
/// # Examples
///
/// ```
/// use sec_bdd::BddManager;
/// let mut m = BddManager::new();
/// let x = m.add_var();
/// let y = m.add_var();
/// let f = m.and(m.var(x), m.var(y))?;
/// let g = m.or(!m.var(x), !m.var(y))?;
/// assert_eq!(f, !g); // complement edges make this a pointer check
/// # Ok::<(), sec_bdd::BddHalt>(())
/// ```
pub struct BddManager {
    pub(crate) nodes: Vec<NodeData>,
    free: Vec<u32>,
    pub(crate) subtables: Vec<Subtable>,
    /// level -> var id
    pub(crate) var_at_level: Vec<u32>,
    /// var id -> level
    pub(crate) level_of_var: Vec<u32>,
    /// var id -> projection function
    proj: Vec<Bdd>,
    pub(crate) cache: Cache,
    node_limit: usize,
    peak_live: usize,
    /// Live count right after the last GC; used to estimate garbage.
    pub(crate) last_gc_live: usize,
    /// Cooperative cancellation/deadline, polled on bounded node creation.
    limits: Limits,
    /// Total unique-table insertions since creation (monotonic, unlike
    /// the live count): the source of the `bdd_nodes_allocated` counter.
    allocated: u64,
    /// Observability handle (off by default); only rare events
    /// (`bdd.gc`) are emitted directly from the manager.
    obs: Obs,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates a manager with a generous default node limit (16 M nodes).
    pub fn new() -> BddManager {
        BddManager::with_node_limit(16 << 20)
    }

    /// Creates a manager that refuses to grow beyond `node_limit` live
    /// nodes (operations then return [`BddHalt`]).
    pub fn with_node_limit(node_limit: usize) -> BddManager {
        BddManager {
            nodes: vec![NodeData {
                var: TERMINAL_VAR,
                high: Bdd::ONE,
                low: Bdd::ONE,
                next: NIL,
            }],
            free: Vec::new(),
            subtables: Vec::new(),
            var_at_level: Vec::new(),
            level_of_var: Vec::new(),
            proj: Vec::new(),
            cache: Cache::new(16),
            node_limit,
            peak_live: 1,
            last_gc_live: 1,
            limits: Limits::none(),
            allocated: 0,
            obs: Obs::off(),
        }
    }

    /// Attaches cooperative limits (cancellation token and/or deadline).
    ///
    /// Bounded operations poll the limits on every node creation and
    /// return [`BddHalt::Stopped`] once the limits trip, unwinding with
    /// the unique tables fully consistent; [`BddManager::gc`] with the
    /// caller's surviving roots then reclaims any partial intermediate
    /// results. Reordering ignores the limits (a mid-swap stop would
    /// leave the tables inconsistent).
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Attaches an observability handle. The node-creation hot path
    /// stays uninstrumented (allocation totals are kept in a plain
    /// counter, see [`BddManager::allocated_nodes`]); only garbage
    /// collections emit a `bdd.gc` event.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Total cooperative-limit polls this manager has performed —
    /// the source of the `cancellation_polls` counter.
    pub fn limit_polls(&self) -> u64 {
        self.limits.polls()
    }

    /// Appends a new variable at the bottom of the current order.
    pub fn add_var(&mut self) -> BddVar {
        let id = self.subtables.len() as u32;
        self.subtables.push(Subtable::new());
        self.var_at_level.push(id);
        self.level_of_var.push(id);
        // The projection is one node and must exist for the manager to
        // be usable at all, so it bypasses both the node limit and the
        // cancellation poll (like reordering does).
        let p = self
            .mk_unbounded(id, Bdd::ONE, Bdd::ZERO)
            .expect("unbounded mk cannot fail");
        self.proj.push(p);
        BddVar(id)
    }

    /// Adds `n` variables and returns their handles.
    pub fn add_vars(&mut self, n: usize) -> Vec<BddVar> {
        (0..n).map(|_| self.add_var()).collect()
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.subtables.len()
    }

    /// The projection function of a variable.
    #[inline]
    pub fn var(&self, v: BddVar) -> Bdd {
        self.proj[v.id()]
    }

    /// The negated projection function of a variable.
    #[inline]
    pub fn nvar(&self, v: BddVar) -> Bdd {
        !self.proj[v.id()]
    }

    /// A literal: the projection or its complement.
    #[inline]
    pub fn literal(&self, v: BddVar, positive: bool) -> Bdd {
        self.proj[v.id()].complement_if(!positive)
    }

    /// The current level (order position) of a variable.
    #[inline]
    pub fn level_of(&self, v: BddVar) -> usize {
        self.level_of_var[v.id()] as usize
    }

    /// The variable at a given order position.
    #[inline]
    pub fn var_at(&self, level: usize) -> BddVar {
        BddVar(self.var_at_level[level])
    }

    /// The level of a function's top node (`usize::MAX` for constants).
    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> usize {
        let v = self.nodes[f.index()].var;
        if v == TERMINAL_VAR {
            usize::MAX
        } else {
            self.level_of_var[v as usize] as usize
        }
    }

    /// The variable labelling a function's top node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is constant.
    pub fn top_var(&self, f: Bdd) -> BddVar {
        let v = self.nodes[f.index()].var;
        assert_ne!(v, TERMINAL_VAR, "top_var of a constant");
        BddVar(v)
    }

    /// The cofactors `(f_high, f_low)` of `f` with respect to its own top
    /// variable.
    ///
    /// # Panics
    ///
    /// Panics if `f` is constant.
    pub fn cofactors(&self, f: Bdd) -> (Bdd, Bdd) {
        let n = &self.nodes[f.index()];
        assert_ne!(n.var, TERMINAL_VAR, "cofactors of a constant");
        let c = f.is_complemented();
        (n.high.complement_if(c), n.low.complement_if(c))
    }

    /// Cofactors of `f` with respect to the variable at `level`, which must
    /// not be below `f`'s top level.
    #[inline]
    pub(crate) fn cofactors_at(&self, f: Bdd, level: usize) -> (Bdd, Bdd) {
        if self.level(f) == level {
            self.cofactors(f)
        } else {
            debug_assert!(self.level(f) > level);
            (f, f)
        }
    }

    /// Number of live (allocated, non-freed) nodes, including the terminal.
    #[inline]
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Total unique-table insertions since creation. Monotonic — GC
    /// does not decrease it — so it measures allocation pressure where
    /// [`BddManager::peak_live_nodes`] measures residency.
    pub fn allocated_nodes(&self) -> u64 {
        self.allocated
    }

    /// High-water mark of [`BddManager::live_nodes`] since creation.
    #[inline]
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live
    }

    /// The configured node limit.
    #[inline]
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Finds or creates the node `var · high + ¬var · low`, enforcing the
    /// complement-edge canonical form.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt::Overflow`] when a new node would exceed the
    /// limit and [`BddHalt::Stopped`] when the attached limits trip.
    pub(crate) fn mk(&mut self, var: u32, high: Bdd, low: Bdd) -> BddResult {
        self.limits.check()?;
        if high == low {
            return Ok(high);
        }
        if high.is_complemented() {
            return self.mk_regular(var, !high, !low, true).map(|b| !b);
        }
        self.mk_regular(var, high, low, true)
    }

    /// `mk` without the node limit; used by reordering, where a mid-swap
    /// failure would leave the unique tables inconsistent.
    pub(crate) fn mk_unbounded(&mut self, var: u32, high: Bdd, low: Bdd) -> BddResult {
        if high == low {
            return Ok(high);
        }
        if high.is_complemented() {
            return self.mk_regular(var, !high, !low, false).map(|b| !b);
        }
        self.mk_regular(var, high, low, false)
    }

    fn mk_regular(&mut self, var: u32, high: Bdd, low: Bdd, bounded: bool) -> BddResult {
        debug_assert!(!high.is_complemented());
        debug_assert!(self.level(high) > self.level_of_var[var as usize] as usize);
        debug_assert!(self.level(low) > self.level_of_var[var as usize] as usize);
        let st = &self.subtables[var as usize];
        let b = st.bucket(high, low);
        let mut cur = st.buckets[b];
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.high == high && n.low == low && n.var == var {
                return Ok(Bdd::new(cur, false));
            }
            cur = n.next;
        }
        if bounded && self.live_nodes() >= self.node_limit {
            return Err(BddHalt::Overflow {
                limit: self.node_limit,
            });
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = NodeData {
                    var,
                    high,
                    low,
                    next: NIL,
                };
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(NodeData {
                    var,
                    high,
                    low,
                    next: NIL,
                });
                i
            }
        };
        self.allocated += 1;
        let st = &mut self.subtables[var as usize];
        self.nodes[idx as usize].next = st.buckets[b];
        st.buckets[b] = idx;
        st.count += 1;
        if st.count > st.buckets.len() * 3 / 4 {
            self.grow_subtable(var as usize);
        }
        let live = self.live_nodes();
        if live > self.peak_live {
            self.peak_live = live;
        }
        Ok(Bdd::new(idx, false))
    }

    /// Empties a subtable's buckets without freeing its nodes (the caller
    /// takes responsibility for reinserting or rebuilding every node).
    pub(crate) fn clear_subtable(&mut self, var: u32) {
        let st = &mut self.subtables[var as usize];
        st.buckets.fill(NIL);
        st.count = 0;
    }

    /// Inserts an existing node slot into `var`'s subtable (used by
    /// reordering). The node's `var`, `high` and `low` fields must already
    /// be final.
    pub(crate) fn reinsert(&mut self, var: u32, idx: u32) {
        let node = self.nodes[idx as usize];
        debug_assert_eq!(node.var, var);
        let st = &mut self.subtables[var as usize];
        let b = st.bucket(node.high, node.low);
        self.nodes[idx as usize].next = st.buckets[b];
        st.buckets[b] = idx;
        st.count += 1;
        if st.count > st.buckets.len() * 3 / 4 {
            self.grow_subtable(var as usize);
        }
    }

    fn grow_subtable(&mut self, var: usize) {
        let new_len = self.subtables[var].buckets.len() * 2;
        let old = std::mem::replace(&mut self.subtables[var].buckets, vec![NIL; new_len]);
        for head in old {
            let mut cur = head;
            while cur != NIL {
                let node = self.nodes[cur as usize];
                let next = node.next;
                let b = self.subtables[var].bucket(node.high, node.low);
                self.nodes[cur as usize].next = self.subtables[var].buckets[b];
                self.subtables[var].buckets[b] = cur;
                cur = next;
            }
        }
    }

    /// Marks everything reachable from `roots` (plus projections) and
    /// sweeps the rest; clears the computed table. Returns the number of
    /// live nodes afterwards.
    pub fn gc(&mut self, roots: &[Bdd]) -> usize {
        let live_before = self.live_nodes();
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        let mut stack: Vec<u32> = Vec::with_capacity(256);
        for r in roots
            .iter()
            .map(|r| r.index() as u32)
            .chain(self.proj.iter().map(|p| p.index() as u32))
        {
            stack.push(r);
        }
        while let Some(i) = stack.pop() {
            if marked[i as usize] {
                continue;
            }
            marked[i as usize] = true;
            let n = &self.nodes[i as usize];
            stack.push(n.high.index() as u32);
            stack.push(n.low.index() as u32);
        }
        // Rebuild the free list from scratch (dead nodes' `next` fields are
        // repurposed as chain links in subtables, so we can't trust them).
        self.free.clear();
        for st in &mut self.subtables {
            st.count = 0;
        }
        let num_vars = self.subtables.len();
        for var in 0..num_vars {
            let buckets = self.subtables[var].buckets.len();
            for b in 0..buckets {
                let mut cur = self.subtables[var].buckets[b];
                let mut prev = NIL;
                while cur != NIL {
                    let next = self.nodes[cur as usize].next;
                    if marked[cur as usize] {
                        if prev == NIL {
                            self.subtables[var].buckets[b] = cur;
                        } else {
                            self.nodes[prev as usize].next = cur;
                        }
                        prev = cur;
                        self.subtables[var].count += 1;
                    } else {
                        self.free.push(cur);
                        // Mark the slot as free for invariant checks.
                        self.nodes[cur as usize].var = TERMINAL_VAR;
                    }
                    cur = next;
                }
                if prev == NIL {
                    self.subtables[var].buckets[b] = NIL;
                } else {
                    self.nodes[prev as usize].next = NIL;
                }
            }
        }
        self.cache.clear();
        self.last_gc_live = self.live_nodes();
        self.obs.add(sec_obs::Counter::BddGcRuns, 1);
        sec_obs::event!(
            self.obs,
            "bdd.gc",
            live_before = live_before,
            live_after = self.last_gc_live,
        );
        self.last_gc_live
    }

    /// Clears the computed table (for measurement or determinism).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Computed-table hit/miss counters `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BddManager {{ vars: {}, live: {}, peak: {} }}",
            self.num_vars(),
            self.live_nodes(),
            self.peak_live_nodes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_identities() {
        assert_eq!(!Bdd::ONE, Bdd::ZERO);
        assert!(Bdd::ONE.is_const());
        assert!(Bdd::ZERO.is_complemented());
    }

    #[test]
    fn mk_is_canonical() {
        let mut m = BddManager::new();
        let x = m.add_var();
        let a = m.var(x);
        let b = m.var(x);
        assert_eq!(a, b);
        assert_eq!(m.nvar(x), !a);
        // high edge of every node is regular
        for n in &m.nodes[1..] {
            assert!(!n.high.is_complemented());
        }
    }

    #[test]
    fn mk_collapses_equal_children() {
        let mut m = BddManager::new();
        let _x = m.add_var();
        let r = m.mk(0, Bdd::ONE, Bdd::ONE).unwrap();
        assert_eq!(r, Bdd::ONE);
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = BddManager::with_node_limit(3); // terminal + 2 projections
        let x = m.add_var();
        let y = m.add_var();
        assert_eq!(m.live_nodes(), 3);
        let e = m.mk(x.0, m.var(y), Bdd::ZERO).unwrap_err();
        assert_eq!(e, BddHalt::Overflow { limit: 3 });
    }

    #[test]
    fn limits_stop_bounded_operations() {
        use sec_limits::CancellationToken;
        let mut m = BddManager::new();
        let vars = m.add_vars(8);
        let token = CancellationToken::new();
        m.set_limits(Limits::with_token(&token));
        // Limits attached but untripped: operations proceed.
        let mut f = m.var(vars[0]);
        for &v in &vars[1..4] {
            f = m.xor(f, m.var(v)).unwrap();
        }
        token.cancel();
        let e = m.xor(f, m.var(vars[5])).unwrap_err();
        assert_eq!(e, BddHalt::Stopped(Stop::Cancelled));
        // The manager stays consistent and usable once limits are lifted.
        m.set_limits(Limits::none());
        m.gc(&[f]);
        let g = m.xor(f, m.var(vars[5])).unwrap();
        assert!(m.check_canonical());
        assert_ne!(g, f);
    }

    #[test]
    fn gc_reclaims_dead() {
        let mut m = BddManager::new();
        let x = m.add_var();
        let y = m.add_var();
        let f = m.mk(x.0, m.var(y), Bdd::ZERO).unwrap();
        let before = m.live_nodes();
        let live = m.gc(&[]);
        assert_eq!(live, before - 1);
        // Recreating the node works and projections survived.
        let f2 = m.mk(x.0, m.var(y), Bdd::ZERO).unwrap();
        assert_eq!(m.live_nodes(), before);
        let _ = (f, f2);
    }

    #[test]
    fn gc_keeps_roots() {
        let mut m = BddManager::new();
        let x = m.add_var();
        let y = m.add_var();
        let f = m.mk(x.0, m.var(y), Bdd::ZERO).unwrap();
        let before = m.live_nodes();
        m.gc(&[f]);
        assert_eq!(m.live_nodes(), before);
        // The node is found again rather than duplicated.
        let f2 = m.mk(x.0, m.var(y), Bdd::ZERO).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn peak_tracking() {
        let mut m = BddManager::new();
        let x = m.add_var();
        let y = m.add_var();
        let _f = m.mk(x.0, m.var(y), Bdd::ZERO).unwrap();
        let p = m.peak_live_nodes();
        m.gc(&[]);
        assert_eq!(m.peak_live_nodes(), p);
        assert!(m.live_nodes() < p);
    }

    #[test]
    fn subtable_growth_preserves_uniqueness() {
        let mut m = BddManager::new();
        let vars = m.add_vars(40);
        // Build a chain x0 & x1 & ... forcing many nodes in low subtables.
        let mut f = Bdd::ONE;
        for &v in vars.iter().rev() {
            f = m.mk(v.0, f, Bdd::ZERO).unwrap();
        }
        let mut g = Bdd::ONE;
        for &v in vars.iter().rev() {
            g = m.mk(v.0, g, Bdd::ZERO).unwrap();
        }
        assert_eq!(f, g);
    }
}
