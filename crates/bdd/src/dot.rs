//! Graphviz DOT export of BDDs, for debugging and documentation.

use crate::manager::BddManager;
use crate::node::Bdd;
use std::collections::HashSet;
use std::fmt::Write as _;

impl BddManager {
    /// Renders the BDDs reachable from `roots` as a Graphviz digraph.
    /// Solid edges are *then*, dotted edges are *else*; a dot on an edge
    /// label marks a complemented edge (the root handles are annotated
    /// too).
    pub fn to_dot(&self, roots: &[(Bdd, &str)]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph bdd {{");
        let _ = writeln!(out, "  terminal [label=\"1\", shape=box];");
        let mut seen: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = Vec::new();
        for (i, &(r, name)) in roots.iter().enumerate() {
            let neg = if r.is_complemented() { " (neg)" } else { "" };
            let _ = writeln!(out, "  root{i} [label=\"{name}{neg}\", shape=plaintext];");
            let _ = writeln!(out, "  root{i} -> {};", self.dot_id(r));
            stack.push(r.index());
        }
        while let Some(idx) = stack.pop() {
            if idx == 0 || !seen.insert(idx) {
                continue;
            }
            let n = &self.nodes[idx];
            let _ = writeln!(out, "  n{idx} [label=\"x{}\", shape=circle];", n.var);
            let _ = writeln!(out, "  n{idx} -> {};", self.dot_id(n.high));
            let estyle = if n.low.is_complemented() {
                "style=dotted, label=\"¬\""
            } else {
                "style=dotted"
            };
            let _ = writeln!(out, "  n{idx} -> {} [{estyle}];", self.dot_id(n.low));
            stack.push(n.high.index());
            stack.push(n.low.index());
        }
        let _ = writeln!(out, "}}");
        out
    }

    fn dot_id(&self, e: Bdd) -> String {
        if e.index() == 0 {
            "terminal".to_string()
        } else {
            format!("n{}", e.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_renders_structure() {
        let mut m = BddManager::new();
        let v = m.add_vars(2);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let f = m.and(x, !y).unwrap();
        let dot = m.to_dot(&[(f, "f"), (!f, "not_f")]);
        assert!(dot.contains("digraph bdd"));
        assert!(dot.contains("terminal [label=\"1\""));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("(neg)"));
        assert!(dot.contains("style=dotted"));
    }

    #[test]
    fn constants_render() {
        let m = BddManager::new();
        let dot = m.to_dot(&[(crate::Bdd::ONE, "one")]);
        assert!(dot.contains("root0 -> terminal"));
    }
}
