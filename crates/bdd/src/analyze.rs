//! Read-only analyses of BDDs: evaluation, support, counting, witnesses.

use crate::manager::BddManager;
use crate::node::{Bdd, BddVar, TERMINAL_VAR};
use std::collections::{HashMap, HashSet};

impl BddManager {
    /// Evaluates `f` under a complete assignment indexed by variable id.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the highest variable id on
    /// the path taken.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            let n = &self.nodes[cur.index()];
            if n.var == TERMINAL_VAR {
                return !cur.is_complemented();
            }
            let (hi, lo) = (n.high, n.low);
            let c = cur.is_complemented();
            cur = if assignment[n.var as usize] {
                hi.complement_if(c)
            } else {
                lo.complement_if(c)
            };
        }
    }

    /// The set of variables `f` depends on, sorted by current level.
    pub fn support(&self, f: Bdd) -> Vec<BddVar> {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut vars: HashSet<u32> = HashSet::new();
        let mut stack = vec![f.index() as u32];
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            let n = &self.nodes[i as usize];
            if n.var == TERMINAL_VAR {
                continue;
            }
            vars.insert(n.var);
            stack.push(n.high.index() as u32);
            stack.push(n.low.index() as u32);
        }
        let mut out: Vec<BddVar> = vars.into_iter().map(BddVar).collect();
        out.sort_by_key(|v| self.level_of(*v));
        out
    }

    /// The number of distinct internal nodes reachable from `f`
    /// (the conventional "BDD size"; constants have size 0).
    pub fn node_count(&self, f: Bdd) -> usize {
        self.node_count_many(&[f])
    }

    /// The number of distinct internal nodes reachable from a set of
    /// functions (shared nodes counted once).
    pub fn node_count_many(&self, fs: &[Bdd]) -> usize {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = fs.iter().map(|f| f.index() as u32).collect();
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            let n = &self.nodes[i as usize];
            if n.var == TERMINAL_VAR {
                continue;
            }
            count += 1;
            stack.push(n.high.index() as u32);
            stack.push(n.low.index() as u32);
        }
        count
    }

    /// The number of satisfying assignments of `f` over `num_vars`
    /// variables (as `f64`; exact for small counts).
    pub fn sat_count(&self, f: Bdd, num_vars: usize) -> f64 {
        let mut memo: HashMap<Bdd, f64> = HashMap::new();
        self.sat_count_rec(f, &mut memo) * (num_vars as f64).exp2()
    }

    /// Fraction of assignments satisfying `f` (density in [0, 1]).
    fn sat_count_rec(&self, f: Bdd, memo: &mut HashMap<Bdd, f64>) -> f64 {
        if f == Bdd::ONE {
            return 1.0;
        }
        if f == Bdd::ZERO {
            return 0.0;
        }
        let reg = f.regular();
        let d = match memo.get(&reg) {
            Some(&d) => d,
            None => {
                let (hi, lo) = self.cofactors(reg);
                let d = 0.5 * self.sat_count_rec(hi, memo) + 0.5 * self.sat_count_rec(lo, memo);
                memo.insert(reg, d);
                d
            }
        };
        if f.is_complemented() {
            1.0 - d
        } else {
            d
        }
    }

    /// A satisfying assignment of `f`, if one exists. Entries are `None`
    /// for variables the witness does not constrain.
    ///
    /// The result vector is indexed by variable id and has
    /// [`BddManager::num_vars`] entries.
    pub fn satisfy_one(&self, f: Bdd) -> Option<Vec<Option<bool>>> {
        if f == Bdd::ZERO {
            return None;
        }
        let mut asg = vec![None; self.num_vars()];
        let mut cur = f;
        while cur != Bdd::ONE {
            debug_assert_ne!(cur, Bdd::ZERO);
            let var = self.top_var(cur.regular());
            let (hi, lo) = self.cofactors(cur);
            if hi != Bdd::ZERO {
                asg[var.id()] = Some(true);
                cur = hi;
            } else {
                asg[var.id()] = Some(false);
                cur = lo;
            }
        }
        Some(asg)
    }

    /// Like [`BddManager::satisfy_one`] but with unconstrained variables
    /// filled in as `false`.
    pub fn satisfy_one_total(&self, f: Bdd) -> Option<Vec<bool>> {
        self.satisfy_one(f)
            .map(|asg| asg.into_iter().map(|b| b.unwrap_or(false)).collect())
    }

    /// Verifies the complement-edge canonical-form invariants over the
    /// whole node table (testing aid).
    pub fn check_canonical(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, n)| {
            i == 0
                || n.var == TERMINAL_VAR // freed slot, contents arbitrary
                || (!n.high.is_complemented() && n.high != n.low)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BddManager, Vec<BddVar>, Bdd) {
        let mut m = BddManager::new();
        let v = m.add_vars(3);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let z = m.var(v[2]);
        let xy = m.and(x, y).unwrap();
        let f = m.or(xy, z).unwrap();
        (m, v, f)
    }

    #[test]
    fn eval_matches_semantics() {
        let (m, _, f) = setup();
        assert!(m.eval(f, &[true, true, false]));
        assert!(m.eval(f, &[false, false, true]));
        assert!(!m.eval(f, &[true, false, false]));
        assert!(m.eval(Bdd::ONE, &[]));
        assert!(!m.eval(Bdd::ZERO, &[]));
    }

    #[test]
    fn support_is_exact() {
        let (mut m, v, f) = setup();
        assert_eq!(m.support(f), vec![v[0], v[1], v[2]]);
        let g = m.exists(f, &[v[1]]).unwrap();
        assert_eq!(m.support(g), vec![v[0], v[2]]);
        assert!(m.support(Bdd::ONE).is_empty());
    }

    #[test]
    fn sat_count_small() {
        let (m, _, f) = setup();
        // xy + z over 3 vars: satisfied by z=1 (4) plus xy=1,z=0 (1) = 5.
        assert_eq!(m.sat_count(f, 3), 5.0);
        assert_eq!(m.sat_count(!f, 3), 3.0);
        assert_eq!(m.sat_count(Bdd::ONE, 3), 8.0);
    }

    #[test]
    fn satisfy_one_is_satisfying() {
        let (m, _, f) = setup();
        let asg = m.satisfy_one_total(f).unwrap();
        assert!(m.eval(f, &asg));
        let asg2 = m.satisfy_one_total(!f).unwrap();
        assert!(!m.eval(f, &asg2));
        assert!(m.satisfy_one(Bdd::ZERO).is_none());
    }

    #[test]
    fn node_count_shared() {
        let (m, _, f) = setup();
        let single = m.node_count(f);
        assert!(single >= 2);
        assert_eq!(m.node_count_many(&[f, f]), single);
        assert_eq!(m.node_count(Bdd::ONE), 0);
    }

    #[test]
    fn canonical_invariant_holds() {
        let (m, ..) = setup();
        assert!(m.check_canonical());
    }
}
