//! Boolean operations: `ite` and the operators derived from it.

use crate::cache::OP_ITE;
use crate::manager::{BddManager, BddResult};
use crate::node::Bdd;

impl BddManager {
    /// If-then-else: `f·g + ¬f·h`. The universal BDD operation; all binary
    /// operators are thin wrappers around it.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`](crate::BddHalt) if the node limit is
    /// exceeded.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> BddResult {
        // Terminal and absorption rules.
        if f == Bdd::ONE {
            return Ok(g);
        }
        if f == Bdd::ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Bdd::ONE && h == Bdd::ZERO {
            return Ok(f);
        }
        if g == Bdd::ZERO && h == Bdd::ONE {
            return Ok(!f);
        }
        let (f, g, h) = if f == g {
            (f, Bdd::ONE, h)
        } else if f == !g {
            (f, Bdd::ZERO, h)
        } else if f == h {
            (f, g, Bdd::ZERO)
        } else if f == !h {
            (f, g, Bdd::ONE)
        } else {
            (f, g, h)
        };
        // Re-check terminal forms exposed by the rewrite.
        if g == Bdd::ONE && h == Bdd::ZERO {
            return Ok(f);
        }
        if g == Bdd::ZERO && h == Bdd::ONE {
            return Ok(!f);
        }
        if g == h {
            return Ok(g);
        }
        // Canonicalize complements for better cache utilization:
        // ite(!f, g, h) = ite(f, h, g); ite(f, !g, !h) = !ite(f, g, h).
        let (f, g, h) = if f.is_complemented() {
            (!f, h, g)
        } else {
            (f, g, h)
        };
        let (g, h, flip) = if g.is_complemented() {
            (!g, !h, true)
        } else {
            (g, h, false)
        };
        if let Some(r) = self.cache.get(OP_ITE, f, g, h) {
            return Ok(r.complement_if(flip));
        }
        let level = self.level(f).min(self.level(g)).min(self.level(h));
        let var = self.var_at_level[level];
        let (f1, f0) = self.cofactors_at(f, level);
        let (g1, g0) = self.cofactors_at(g, level);
        let (h1, h0) = self.cofactors_at(h, level);
        let t = self.ite(f1, g1, h1)?;
        let e = self.ite(f0, g0, h0)?;
        let r = self.mk(var, t, e)?;
        self.cache.put(OP_ITE, f, g, h, r);
        Ok(r.complement_if(flip))
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`](crate::BddHalt) on node-limit overflow
    /// (as do all the operators below).
    pub fn and(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, g, Bdd::ZERO)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, Bdd::ONE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, !g, g)
    }

    /// Equivalence (biconditional).
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, g, !g)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> BddResult {
        self.ite(f, g, Bdd::ONE)
    }

    /// Balanced conjunction of a slice.
    pub fn and_many(&mut self, fs: &[Bdd]) -> BddResult {
        match fs {
            [] => Ok(Bdd::ONE),
            [f] => Ok(*f),
            _ => {
                let (lo, hi) = fs.split_at(fs.len() / 2);
                let a = self.and_many(lo)?;
                if a == Bdd::ZERO {
                    return Ok(Bdd::ZERO);
                }
                let b = self.and_many(hi)?;
                self.and(a, b)
            }
        }
    }

    /// Balanced disjunction of a slice.
    pub fn or_many(&mut self, fs: &[Bdd]) -> BddResult {
        match fs {
            [] => Ok(Bdd::ZERO),
            [f] => Ok(*f),
            _ => {
                let (lo, hi) = fs.split_at(fs.len() / 2);
                let a = self.or_many(lo)?;
                if a == Bdd::ONE {
                    return Ok(Bdd::ONE);
                }
                let b = self.or_many(hi)?;
                self.or(a, b)
            }
        }
    }

    /// Whether `f → g` is a tautology (checked without building the
    /// implication: `f ∧ ¬g = ⊥`).
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`](crate::BddHalt) on node-limit overflow.
    pub fn leq(&mut self, f: Bdd, g: Bdd) -> Result<bool, crate::BddHalt> {
        Ok(self.and(f, !g)? == Bdd::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BddVar;

    fn setup(n: usize) -> (BddManager, Vec<BddVar>) {
        let mut m = BddManager::new();
        let vars = m.add_vars(n);
        (m, vars)
    }

    /// Exhaustively compares a BDD against a truth-table oracle.
    fn check_tt(m: &BddManager, f: Bdd, n: usize, oracle: impl Fn(&[bool]) -> bool) {
        for bits in 0..1u32 << n {
            let asg: Vec<bool> = (0..n).map(|i| bits >> i & 1 != 0).collect();
            assert_eq!(m.eval(f, &asg), oracle(&asg), "assignment {asg:?}");
        }
    }

    #[test]
    fn ite_basic_identities() {
        let (mut m, v) = setup(2);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        assert_eq!(m.ite(Bdd::ONE, x, y).unwrap(), x);
        assert_eq!(m.ite(Bdd::ZERO, x, y).unwrap(), y);
        assert_eq!(m.ite(x, Bdd::ONE, Bdd::ZERO).unwrap(), x);
        assert_eq!(m.ite(x, Bdd::ZERO, Bdd::ONE).unwrap(), !x);
        assert_eq!(m.ite(x, y, y).unwrap(), y);
    }

    #[test]
    fn demorgan_is_pointer_equality() {
        let (mut m, v) = setup(2);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let a = m.and(x, y).unwrap();
        let o = m.or(!x, !y).unwrap();
        assert_eq!(a, !o);
    }

    #[test]
    fn xor_truth_table() {
        let (mut m, v) = setup(3);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let z = m.var(v[2]);
        let xy = m.xor(x, y).unwrap();
        let f = m.xor(xy, z).unwrap();
        check_tt(&m, f, 3, |a| a[0] ^ a[1] ^ a[2]);
    }

    #[test]
    fn majority_truth_table() {
        let (mut m, v) = setup(3);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let z = m.var(v[2]);
        let xy = m.and(x, y).unwrap();
        let xz = m.and(x, z).unwrap();
        let yz = m.and(y, z).unwrap();
        let t = m.or(xy, xz).unwrap();
        let f = m.or(t, yz).unwrap();
        check_tt(&m, f, 3, |a| (a[0] & a[1]) | (a[0] & a[2]) | (a[1] & a[2]));
    }

    #[test]
    fn and_or_many() {
        let (mut m, v) = setup(5);
        let lits: Vec<Bdd> = v.iter().map(|&x| m.var(x)).collect();
        let f = m.and_many(&lits).unwrap();
        check_tt(&m, f, 5, |a| a.iter().all(|&b| b));
        let g = m.or_many(&lits).unwrap();
        check_tt(&m, g, 5, |a| a.iter().any(|&b| b));
        assert_eq!(m.and_many(&[]).unwrap(), Bdd::ONE);
        assert_eq!(m.or_many(&[]).unwrap(), Bdd::ZERO);
    }

    #[test]
    fn leq_detects_implication() {
        let (mut m, v) = setup(2);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let a = m.and(x, y).unwrap();
        assert!(m.leq(a, x).unwrap());
        assert!(!m.leq(x, a).unwrap());
        assert!(m.leq(Bdd::ZERO, a).unwrap());
        assert!(m.leq(a, Bdd::ONE).unwrap());
    }

    #[test]
    fn cache_effectiveness() {
        let (mut m, v) = setup(10);
        let lits: Vec<Bdd> = v.iter().map(|&x| m.var(x)).collect();
        let f = m.and_many(&lits).unwrap();
        let g = m.and_many(&lits).unwrap();
        assert_eq!(f, g);
        let (hits, _) = m.cache_stats();
        assert!(hits > 0 || m.live_nodes() > 0);
    }
}
