//! Substitution: vector composition and cube cofactoring.
//!
//! Vector composition builds `f(x₁ ← g₁, …, xₙ ← gₙ)` in one pass; the
//! verification engine uses it to express the paper's next-state functions
//! `ν_v(s, x_t, x_{t+1}) = f_v(δ(s, x_t), x_{t+1})` and to apply
//! functional-dependency substitutions (Sec. 4).

use crate::manager::{BddManager, BddResult};
use crate::node::{Bdd, BddVar};
use std::collections::HashMap;

/// A variable substitution for [`BddManager::compose`]. Variables without
/// an entry map to themselves.
#[derive(Clone, Debug, Default)]
pub struct Substitution {
    map: HashMap<u32, Bdd>,
}

impl Substitution {
    /// An empty (identity) substitution.
    pub fn new() -> Substitution {
        Substitution::default()
    }

    /// Maps `var` to the function `g`.
    pub fn set(&mut self, var: BddVar, g: Bdd) -> &mut Self {
        self.map.insert(var.0, g);
        self
    }

    /// The image of `var`, if any.
    pub fn get(&self, var: BddVar) -> Option<Bdd> {
        self.map.get(&var.0).copied()
    }

    /// Number of mapped variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the substitution is the identity.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(var, image)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BddVar, Bdd)> + '_ {
        self.map.iter().map(|(&v, &g)| (BddVar(v), g))
    }
}

impl FromIterator<(BddVar, Bdd)> for Substitution {
    fn from_iter<T: IntoIterator<Item = (BddVar, Bdd)>>(iter: T) -> Self {
        Substitution {
            map: iter.into_iter().map(|(v, g)| (v.0, g)).collect(),
        }
    }
}

impl BddManager {
    /// Simultaneous composition `f[xᵢ ← gᵢ]`.
    ///
    /// Uses a per-call memo table (results depend on the substitution, so
    /// the global computed table cannot be used).
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`](crate::BddHalt) on node-limit overflow.
    pub fn compose(&mut self, f: Bdd, subst: &Substitution) -> BddResult {
        if subst.is_empty() {
            return Ok(f);
        }
        let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
        self.compose_rec(f, subst, &mut memo)
    }

    /// Composes many functions under one substitution, sharing the memo
    /// table across all of them (much cheaper than separate
    /// [`BddManager::compose`] calls when the functions share structure,
    /// as the per-signal functions of a circuit always do).
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`](crate::BddHalt) on node-limit overflow.
    pub fn compose_many(
        &mut self,
        fs: &[Bdd],
        subst: &Substitution,
    ) -> Result<Vec<Bdd>, crate::BddHalt> {
        if subst.is_empty() {
            return Ok(fs.to_vec());
        }
        let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
        fs.iter()
            .map(|&f| self.compose_rec(f, subst, &mut memo))
            .collect()
    }

    fn compose_rec(
        &mut self,
        f: Bdd,
        subst: &Substitution,
        memo: &mut HashMap<Bdd, Bdd>,
    ) -> BddResult {
        if f.is_const() {
            return Ok(f);
        }
        let reg = f.regular();
        if let Some(&r) = memo.get(&reg) {
            return Ok(r.complement_if(f.is_complemented()));
        }
        let var = self.top_var(reg);
        let (f1, f0) = self.cofactors(reg);
        let r1 = self.compose_rec(f1, subst, memo)?;
        let r0 = self.compose_rec(f0, subst, memo)?;
        let g = match subst.get(var) {
            Some(g) => g,
            None => self.var(var),
        };
        let r = self.ite(g, r1, r0)?;
        memo.insert(reg, r);
        Ok(r.complement_if(f.is_complemented()))
    }

    /// Cofactor of `f` under a partial assignment (a cube): each listed
    /// variable is fixed to its value.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`](crate::BddHalt) on node-limit overflow.
    pub fn cofactor_cube(&mut self, f: Bdd, assignment: &[(BddVar, bool)]) -> BddResult {
        if assignment.is_empty() {
            return Ok(f);
        }
        let mut values: HashMap<u32, bool> = HashMap::with_capacity(assignment.len());
        for (v, b) in assignment {
            values.insert(v.0, *b);
        }
        let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
        self.cofactor_rec(f, &values, &mut memo)
    }

    /// Cofactor with respect to a single variable.
    ///
    /// # Errors
    ///
    /// Returns [`BddHalt`](crate::BddHalt) on node-limit overflow.
    pub fn cofactor(&mut self, f: Bdd, var: BddVar, value: bool) -> BddResult {
        self.cofactor_cube(f, &[(var, value)])
    }

    fn cofactor_rec(
        &mut self,
        f: Bdd,
        values: &HashMap<u32, bool>,
        memo: &mut HashMap<Bdd, Bdd>,
    ) -> BddResult {
        if f.is_const() {
            return Ok(f);
        }
        let reg = f.regular();
        if let Some(&r) = memo.get(&reg) {
            return Ok(r.complement_if(f.is_complemented()));
        }
        let var = self.top_var(reg);
        let (f1, f0) = self.cofactors(reg);
        let r = match values.get(&var.0) {
            Some(true) => self.cofactor_rec(f1, values, memo)?,
            Some(false) => self.cofactor_rec(f0, values, memo)?,
            None => {
                let r1 = self.cofactor_rec(f1, values, memo)?;
                let r0 = self.cofactor_rec(f0, values, memo)?;
                self.mk(var.0, r1, r0)?
            }
        };
        memo.insert(reg, r);
        Ok(r.complement_if(f.is_complemented()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_identity() {
        let mut m = BddManager::new();
        let v = m.add_vars(2);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let f = m.xor(x, y).unwrap();
        assert_eq!(m.compose(f, &Substitution::new()).unwrap(), f);
    }

    #[test]
    fn compose_substitutes() {
        let mut m = BddManager::new();
        let v = m.add_vars(3);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let z = m.var(v[2]);
        let f = m.xor(x, y).unwrap();
        // f[y <- x & z] = x ^ (x & z)
        let xz = m.and(x, z).unwrap();
        let mut s = Substitution::new();
        s.set(v[1], xz);
        let g = m.compose(f, &s).unwrap();
        let expect = m.xor(x, xz).unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn compose_simultaneous_swap() {
        let mut m = BddManager::new();
        let v = m.add_vars(2);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let and_ = m.and(x, !y).unwrap();
        // Swap x and y simultaneously: result must be y & !x, not a
        // sequential mess.
        let s: Substitution = [(v[0], y), (v[1], x)].into_iter().collect();
        let g = m.compose(and_, &s).unwrap();
        let expect = m.and(y, !x).unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn compose_handles_complement_roots() {
        let mut m = BddManager::new();
        let v = m.add_vars(2);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let f = m.and(x, y).unwrap();
        let mut s = Substitution::new();
        s.set(v[0], !y);
        let g = m.compose(!f, &s).unwrap();
        let ny_and_y = m.and(!y, y).unwrap();
        assert_eq!(g, !ny_and_y);
        assert_eq!(g, Bdd::ONE);
    }

    #[test]
    fn cofactor_fixes_variables() {
        let mut m = BddManager::new();
        let v = m.add_vars(3);
        let x = m.var(v[0]);
        let y = m.var(v[1]);
        let z = m.var(v[2]);
        let xy = m.and(x, y).unwrap();
        let f = m.or(xy, z).unwrap();
        assert_eq!(m.cofactor(f, v[2], true).unwrap(), Bdd::ONE);
        let c = m.cofactor(f, v[2], false).unwrap();
        assert_eq!(c, xy);
        let c2 = m.cofactor_cube(f, &[(v[0], true), (v[2], false)]).unwrap();
        assert_eq!(c2, y);
    }

    #[test]
    fn substitution_api() {
        let mut s = Substitution::new();
        assert!(s.is_empty());
        s.set(BddVar(3), Bdd::ONE);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BddVar(3)), Some(Bdd::ONE));
        assert_eq!(s.get(BddVar(4)), None);
        assert_eq!(s.iter().count(), 1);
    }
}
