//! Property-based tests: every BDD operation must agree with a
//! truth-table oracle on random boolean expressions, and GC/reordering
//! must never change the function of a live root.

use proptest::prelude::*;
use sec_bdd::{Bdd, BddManager, BddVar};

const NVARS: usize = 5;

/// A random boolean expression over `NVARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, asg: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(i) => asg[*i],
            Expr::Not(e) => !e.eval(asg),
            Expr::And(a, b) => a.eval(asg) && b.eval(asg),
            Expr::Or(a, b) => a.eval(asg) || b.eval(asg),
            Expr::Xor(a, b) => a.eval(asg) ^ b.eval(asg),
            Expr::Ite(c, t, e) => {
                if c.eval(asg) {
                    t.eval(asg)
                } else {
                    e.eval(asg)
                }
            }
        }
    }

    fn build(&self, m: &mut BddManager, vars: &[BddVar]) -> Bdd {
        match self {
            Expr::Const(true) => Bdd::ONE,
            Expr::Const(false) => Bdd::ZERO,
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(e) => !e.build(m, vars),
            Expr::And(a, b) => {
                let x = a.build(m, vars);
                let y = b.build(m, vars);
                m.and(x, y).unwrap()
            }
            Expr::Or(a, b) => {
                let x = a.build(m, vars);
                let y = b.build(m, vars);
                m.or(x, y).unwrap()
            }
            Expr::Xor(a, b) => {
                let x = a.build(m, vars);
                let y = b.build(m, vars);
                m.xor(x, y).unwrap()
            }
            Expr::Ite(c, t, e) => {
                let x = c.build(m, vars);
                let y = t.build(m, vars);
                let z = e.build(m, vars);
                m.ite(x, y, z).unwrap()
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Expr::Ite(Box::new(a), Box::new(b), Box::new(c))),
        ]
    })
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|bits| (0..NVARS).map(|i| bits >> i & 1 != 0).collect())
}

proptest! {
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        for asg in assignments() {
            prop_assert_eq!(m.eval(f, &asg), e.eval(&asg));
        }
        prop_assert!(m.check_canonical());
    }

    #[test]
    fn gc_preserves_live_roots(e1 in arb_expr(), e2 in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e1.build(&mut m, &vars);
        let _dead = e2.build(&mut m, &vars);
        let expect: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        m.gc(&[f]);
        let got: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        prop_assert_eq!(got, expect);
        // The manager stays fully functional after GC.
        let g = m.and(f, m.var(vars[0])).unwrap();
        for a in assignments() {
            prop_assert_eq!(m.eval(g, &a), m.eval(f, &a) && a[0]);
        }
    }

    #[test]
    fn sift_preserves_functions(e1 in arb_expr(), e2 in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e1.build(&mut m, &vars);
        let g = e2.build(&mut m, &vars);
        let ef: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        let eg: Vec<bool> = assignments().map(|a| m.eval(g, &a)).collect();
        m.sift(&[f, g], 2.0);
        prop_assert!(m.check_canonical());
        let gf: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        let gg: Vec<bool> = assignments().map(|a| m.eval(g, &a)).collect();
        prop_assert_eq!(gf, ef);
        prop_assert_eq!(gg, eg);
    }

    #[test]
    fn random_swaps_preserve_functions(e in arb_expr(), swaps in proptest::collection::vec(0..NVARS - 1, 0..12)) {
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let expect: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        for s in swaps {
            m.swap_levels(s);
            prop_assert!(m.check_canonical());
        }
        let got: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn exists_quantifies(e in arb_expr(), v in 0..NVARS) {
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let ex = m.exists(f, &[vars[v]]).unwrap();
        let fa = m.forall(f, &[vars[v]]).unwrap();
        for mut asg in assignments() {
            asg[v] = false;
            let lo = e.eval(&asg);
            asg[v] = true;
            let hi = e.eval(&asg);
            prop_assert_eq!(m.eval(ex, &asg), lo || hi);
            prop_assert_eq!(m.eval(fa, &asg), lo && hi);
        }
    }

    #[test]
    fn compose_substitutes(e in arb_expr(), g in arb_expr(), v in 0..NVARS) {
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let gb = g.build(&mut m, &vars);
        let mut s = sec_bdd::Substitution::new();
        s.set(vars[v], gb);
        let fc = m.compose(f, &s).unwrap();
        for mut asg in assignments() {
            let gv = g.eval(&asg);
            let orig = asg[v];
            asg[v] = gv;
            let expect = e.eval(&asg);
            asg[v] = orig;
            prop_assert_eq!(m.eval(fc, &asg), expect);
        }
    }

    #[test]
    fn sat_count_matches_enumeration(e in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let expect = assignments().filter(|a| e.eval(a)).count();
        prop_assert_eq!(m.sat_count(f, NVARS) as usize, expect);
        if expect > 0 {
            let w = m.satisfy_one_total(f).unwrap();
            prop_assert!(m.eval(f, &w));
        } else {
            prop_assert!(m.satisfy_one(f).is_none());
        }
    }

    #[test]
    fn and_exists_fused_equals_split(e1 in arb_expr(), e2 in arb_expr(), v1 in 0..NVARS, v2 in 0..NVARS) {
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e1.build(&mut m, &vars);
        let g = e2.build(&mut m, &vars);
        let qs = if v1 == v2 { vec![vars[v1]] } else { vec![vars[v1], vars[v2]] };
        let cube = m.cube(&qs).unwrap();
        let fused = m.and_exists(f, g, cube).unwrap();
        let conj = m.and(f, g).unwrap();
        let split = m.exists(conj, &qs).unwrap();
        prop_assert_eq!(fused, split);
    }
}

/// The manager must remain consistent after an overflow: collect and
/// continue.
#[test]
fn overflow_recovery() {
    use sec_bdd::BddManager;
    let mut m = BddManager::with_node_limit(40);
    let vars = m.add_vars(12);
    // Build until something overflows.
    let mut f = m.var(vars[0]);
    let mut overflowed = false;
    for &v in &vars[1..] {
        match m.xor(f, m.var(v)) {
            Ok(g) => f = g,
            Err(_) => {
                overflowed = true;
                break;
            }
        }
    }
    assert!(overflowed, "limit of 40 nodes must be hit");
    // GC with the last good root; the manager stays usable.
    m.gc(&[f]);
    assert!(m.check_canonical());
    let g = m.and(f, m.var(vars[1])).unwrap();
    let mut asg = vec![false; 12];
    asg[0] = true;
    asg[1] = true;
    assert_eq!(m.eval(g, &asg), m.eval(f, &asg));
}
