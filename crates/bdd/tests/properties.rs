//! Property-based tests: every BDD operation must agree with a
//! truth-table oracle on random boolean expressions, and GC/reordering
//! must never change the function of a live root. Randomized with seeded
//! loops (the offline build replaces proptest), so failures reproduce
//! deterministically from the printed case seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sec_bdd::{Bdd, BddManager, BddVar};

const NVARS: usize = 5;
const CASES: u64 = 128;

/// A random boolean expression over `NVARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn random(rng: &mut StdRng, depth: usize) -> Expr {
        if depth == 0 || rng.gen_bool(0.25) {
            return if rng.gen_bool(0.3) {
                Expr::Const(rng.gen())
            } else {
                Expr::Var(rng.gen_range(0..NVARS))
            };
        }
        let sub = |rng: &mut StdRng| Box::new(Expr::random(rng, depth - 1));
        match rng.gen_range(0..5u32) {
            0 => Expr::Not(sub(rng)),
            1 => Expr::And(sub(rng), sub(rng)),
            2 => Expr::Or(sub(rng), sub(rng)),
            3 => Expr::Xor(sub(rng), sub(rng)),
            _ => Expr::Ite(sub(rng), sub(rng), sub(rng)),
        }
    }

    fn eval(&self, asg: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(i) => asg[*i],
            Expr::Not(e) => !e.eval(asg),
            Expr::And(a, b) => a.eval(asg) && b.eval(asg),
            Expr::Or(a, b) => a.eval(asg) || b.eval(asg),
            Expr::Xor(a, b) => a.eval(asg) ^ b.eval(asg),
            Expr::Ite(c, t, e) => {
                if c.eval(asg) {
                    t.eval(asg)
                } else {
                    e.eval(asg)
                }
            }
        }
    }

    fn build(&self, m: &mut BddManager, vars: &[BddVar]) -> Bdd {
        match self {
            Expr::Const(true) => Bdd::ONE,
            Expr::Const(false) => Bdd::ZERO,
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(e) => !e.build(m, vars),
            Expr::And(a, b) => {
                let x = a.build(m, vars);
                let y = b.build(m, vars);
                m.and(x, y).unwrap()
            }
            Expr::Or(a, b) => {
                let x = a.build(m, vars);
                let y = b.build(m, vars);
                m.or(x, y).unwrap()
            }
            Expr::Xor(a, b) => {
                let x = a.build(m, vars);
                let y = b.build(m, vars);
                m.xor(x, y).unwrap()
            }
            Expr::Ite(c, t, e) => {
                let x = c.build(m, vars);
                let y = t.build(m, vars);
                let z = e.build(m, vars);
                m.ite(x, y, z).unwrap()
            }
        }
    }
}

fn arb_expr(rng: &mut StdRng) -> Expr {
    Expr::random(rng, 5)
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|bits| (0..NVARS).map(|i| bits >> i & 1 != 0).collect())
}

#[test]
fn bdd_matches_truth_table() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBDD_0000 ^ case);
        let e = arb_expr(&mut rng);
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        for asg in assignments() {
            assert_eq!(m.eval(f, &asg), e.eval(&asg), "case {case}");
        }
        assert!(m.check_canonical(), "case {case}");
    }
}

#[test]
fn gc_preserves_live_roots() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBDD_1000 ^ case);
        let e1 = arb_expr(&mut rng);
        let e2 = arb_expr(&mut rng);
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e1.build(&mut m, &vars);
        let _dead = e2.build(&mut m, &vars);
        let expect: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        m.gc(&[f]);
        let got: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        assert_eq!(got, expect, "case {case}");
        // The manager stays fully functional after GC.
        let g = m.and(f, m.var(vars[0])).unwrap();
        for a in assignments() {
            assert_eq!(m.eval(g, &a), m.eval(f, &a) && a[0], "case {case}");
        }
    }
}

#[test]
fn sift_preserves_functions() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBDD_2000 ^ case);
        let e1 = arb_expr(&mut rng);
        let e2 = arb_expr(&mut rng);
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e1.build(&mut m, &vars);
        let g = e2.build(&mut m, &vars);
        let ef: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        let eg: Vec<bool> = assignments().map(|a| m.eval(g, &a)).collect();
        m.sift(&[f, g], 2.0);
        assert!(m.check_canonical(), "case {case}");
        let gf: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        let gg: Vec<bool> = assignments().map(|a| m.eval(g, &a)).collect();
        assert_eq!(gf, ef, "case {case}");
        assert_eq!(gg, eg, "case {case}");
    }
}

#[test]
fn random_swaps_preserve_functions() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBDD_3000 ^ case);
        let e = arb_expr(&mut rng);
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let expect: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        let num_swaps = rng.gen_range(0..12usize);
        for _ in 0..num_swaps {
            m.swap_levels(rng.gen_range(0..NVARS - 1));
            assert!(m.check_canonical(), "case {case}");
        }
        let got: Vec<bool> = assignments().map(|a| m.eval(f, &a)).collect();
        assert_eq!(got, expect, "case {case}");
    }
}

#[test]
fn exists_quantifies() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBDD_4000 ^ case);
        let e = arb_expr(&mut rng);
        let v = rng.gen_range(0..NVARS);
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let ex = m.exists(f, &[vars[v]]).unwrap();
        let fa = m.forall(f, &[vars[v]]).unwrap();
        for mut asg in assignments() {
            asg[v] = false;
            let lo = e.eval(&asg);
            asg[v] = true;
            let hi = e.eval(&asg);
            assert_eq!(m.eval(ex, &asg), lo || hi, "case {case}");
            assert_eq!(m.eval(fa, &asg), lo && hi, "case {case}");
        }
    }
}

#[test]
fn compose_substitutes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBDD_5000 ^ case);
        let e = arb_expr(&mut rng);
        let g = arb_expr(&mut rng);
        let v = rng.gen_range(0..NVARS);
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let gb = g.build(&mut m, &vars);
        let mut s = sec_bdd::Substitution::new();
        s.set(vars[v], gb);
        let fc = m.compose(f, &s).unwrap();
        for mut asg in assignments() {
            let gv = g.eval(&asg);
            let orig = asg[v];
            asg[v] = gv;
            let expect = e.eval(&asg);
            asg[v] = orig;
            assert_eq!(m.eval(fc, &asg), expect, "case {case}");
        }
    }
}

#[test]
fn sat_count_matches_enumeration() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBDD_6000 ^ case);
        let e = arb_expr(&mut rng);
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let expect = assignments().filter(|a| e.eval(a)).count();
        assert_eq!(m.sat_count(f, NVARS) as usize, expect, "case {case}");
        if expect > 0 {
            let w = m.satisfy_one_total(f).unwrap();
            assert!(m.eval(f, &w), "case {case}");
        } else {
            assert!(m.satisfy_one(f).is_none(), "case {case}");
        }
    }
}

#[test]
fn and_exists_fused_equals_split() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBDD_7000 ^ case);
        let e1 = arb_expr(&mut rng);
        let e2 = arb_expr(&mut rng);
        let v1 = rng.gen_range(0..NVARS);
        let v2 = rng.gen_range(0..NVARS);
        let mut m = BddManager::new();
        let vars = m.add_vars(NVARS);
        let f = e1.build(&mut m, &vars);
        let g = e2.build(&mut m, &vars);
        let qs = if v1 == v2 {
            vec![vars[v1]]
        } else {
            vec![vars[v1], vars[v2]]
        };
        let cube = m.cube(&qs).unwrap();
        let fused = m.and_exists(f, g, cube).unwrap();
        let conj = m.and(f, g).unwrap();
        let split = m.exists(conj, &qs).unwrap();
        assert_eq!(fused, split, "case {case}");
    }
}

/// The manager must remain consistent after an overflow: collect and
/// continue.
#[test]
fn overflow_recovery() {
    use sec_bdd::BddManager;
    let mut m = BddManager::with_node_limit(40);
    let vars = m.add_vars(12);
    // Build until something overflows.
    let mut f = m.var(vars[0]);
    let mut overflowed = false;
    for &v in &vars[1..] {
        match m.xor(f, m.var(v)) {
            Ok(g) => f = g,
            Err(_) => {
                overflowed = true;
                break;
            }
        }
    }
    assert!(overflowed, "limit of 40 nodes must be hit");
    // GC with the last good root; the manager stays usable.
    m.gc(&[f]);
    assert!(m.check_canonical());
    let g = m.and(f, m.var(vars[1])).unwrap();
    let mut asg = vec![false; 12];
    asg[0] = true;
    asg[1] = true;
    assert_eq!(m.eval(g, &asg), m.eval(f, &asg));
}
