//! Minimal wall-clock benchmark harness with a criterion-compatible API
//! surface.
//!
//! The build is fully offline, so the crates-io `criterion` dependency
//! was replaced by this module: the bench files keep their shape
//! (`benchmark_group`, `bench_with_input`, `criterion_group!`), only the
//! import path changes. Each `Bencher::iter` call runs one warm-up
//! iteration followed by `sample_size` timed iterations and prints the
//! minimum, median, and maximum wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &b.samples);
    }
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b.samples);
        self
    }

    /// Closes the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// A benchmark label, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label made of a function name and a parameter.
    pub fn new(name: &str, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// A label made of the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// The per-benchmark timing loop, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `sample_size` timed
    /// calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    println!(
        "{name:<44} min {:>12} med {:>12} max {:>12} ({} samples)",
        fmt_duration(sorted[0]),
        fmt_duration(median),
        fmt_duration(*sorted.last().unwrap()),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
