//! Reproduces the paper's surviving-equivalences claim: "The average
//! percentage of equivalences is 54%; without running script.rugged on
//! the circuits the percentage of equivalences is 85%." We compare the
//! matched-signal fraction on retiming-only instances against fully
//! optimized ones.
//!
//! ```sh
//! cargo run --release -p sec-bench --bin eqs_ablation -- [--max-regs N]
//! ```

use sec_bench::{make_instance, run_proposed, RunConfig};
use sec_gen::iscas_alike_suite;

fn main() {
    let mut max_regs = 170;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-regs" {
            i += 1;
            max_regs = args[i].parse().expect("--max-regs N");
        }
        i += 1;
    }

    let suite = iscas_alike_suite(max_regs);
    println!(
        "{:<8} {:>14} {:>14}   (matched spec signals)",
        "circuit", "retiming only", "full optimize"
    );
    println!("{}", "-".repeat(44));
    let mut sums = [0.0f64; 2];
    let mut counts = [0usize; 2];
    for entry in &suite {
        if entry.hard {
            continue; // multiplier rows exhaust the node budget by design
        }
        let mut line = format!("{:<8}", entry.name);
        for (k, optimize) in [false, true].into_iter().enumerate() {
            let cfg = RunConfig {
                optimize,
                run_traversal: false,
                ..RunConfig::default()
            };
            let imp = make_instance(entry, &cfg);
            let r = run_proposed(&entry.aig, &imp, &cfg);
            if r.status == "EQ" {
                line.push_str(&format!(" {:>13.0}%", r.eqs_percent));
                sums[k] += r.eqs_percent;
                counts[k] += 1;
            } else {
                line.push_str(&format!(" {:>14}", r.status));
            }
        }
        println!("{line}");
    }
    println!("{}", "-".repeat(44));
    println!(
        "{:<8} {:>13.0}% {:>13.0}%",
        "average",
        sums[0] / counts[0].max(1) as f64,
        sums[1] / counts[1].max(1) as f64
    );
    println!(
        "\n(paper: 85% without script.rugged, 54% with — the shape to match is\n\
         a large drop from the retiming-only column to the optimized column)"
    );
}
