//! Reproduces the paper's **Table 1**: every benchmark verified against
//! its retimed-and-optimized version by (a) symbolic traversal of the
//! product machine with register-correspondence collapsing, and (b) the
//! proposed signal-correspondence method. Reports run time, peak BDD
//! nodes, iteration counts (with retiming invocations in parentheses)
//! and the percentage of matched specification signals.
//!
//! ```sh
//! cargo run --release -p sec-bench --bin table1 -- [options]
//!   --max-regs N        skip rows with more than N registers
//!   --pair SPEC IMPL    check a circuit-file pair (.bench/.aag/.aig,
//!                       repeatable) instead of the generated suite
//!   --backend sat       SAT backend instead of BDDs (ablation B)
//!   --backend portfolio race all engines; winner shown per row
//!   --no-sim-seed       disable simulation seeding (ablation A)
//!   --no-funcdep        disable functional dependencies (ablation C)
//!   --approx-reach      strengthen Q with approximate reachability
//!   --skip-traversal    only run the proposed method
//!   --timeout SECS      per-row budget for the proposed method
//!   --trav-timeout SECS per-row budget for the baseline
//!   --jobs N            shard SAT refinement rounds over N workers
//!   --retime-only       instances without combinational optimization
//!   --trace-json FILE   stream every engine event as NDJSON to FILE
//!   --stats             print whole-run event-counter totals after the table
//!   --progress[=SECS]   live heartbeat lines on stderr while rows run
//! ```

use sec_bench::{print_table, run_pair, run_row, RunConfig};
use sec_core::Backend;
use sec_gen::iscas_alike_suite;
use sec_netlist::load_model;
use sec_obs::{HeartbeatSink, NdjsonSink, Obs, Recorder, Sink};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = RunConfig::default();
    let mut max_regs = usize::MAX;
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut show_stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regs" => {
                i += 1;
                max_regs = args[i].parse().expect("--max-regs N");
            }
            "--pair" => {
                let spec = args.get(i + 1).expect("--pair SPEC IMPL").clone();
                let imp = args.get(i + 2).expect("--pair SPEC IMPL").clone();
                i += 2;
                pairs.push((spec, imp));
            }
            "--backend" => {
                i += 1;
                match args[i].as_str() {
                    "sat" => cfg.backend = Backend::Sat,
                    "bdd" => cfg.backend = Backend::Bdd,
                    "portfolio" => cfg.use_portfolio = true,
                    other => panic!("unknown backend `{other}`"),
                };
            }
            "--no-sim-seed" => cfg.sim_seed = false,
            "--no-funcdep" => cfg.functional_deps = false,
            "--approx-reach" => cfg.approx_reach = true,
            "--skip-traversal" => cfg.run_traversal = false,
            "--retime-only" => cfg.optimize = false,
            "--timeout" => {
                i += 1;
                cfg.timeout = Duration::from_secs(args[i].parse().expect("--timeout SECS"));
            }
            "--trav-timeout" => {
                i += 1;
                cfg.traversal_timeout =
                    Duration::from_secs(args[i].parse().expect("--trav-timeout SECS"));
            }
            "--jobs" => {
                i += 1;
                let requested: usize =
                    args[i].parse().ok().filter(|n| *n >= 1).unwrap_or_else(|| {
                        eprintln!(
                            "--jobs needs a worker count of at least 1, got `{}` \
                             (hint: pass --jobs 1 for a serial run, or omit the flag)",
                            args[i]
                        );
                        std::process::exit(3);
                    });
                let (jobs, warning) = sec_limits::effective_jobs(requested);
                if let Some(w) = warning {
                    eprintln!("{w}");
                }
                cfg.jobs = jobs;
            }
            "--trace-json" => {
                i += 1;
                trace_path = Some(args[i].clone());
            }
            "--stats" => show_stats = true,
            s if s == "--progress" || s.starts_with("--progress=") => {
                let secs = match s.strip_prefix("--progress=") {
                    Some(v) => v.parse::<f64>().expect("--progress=SECS"),
                    None => 1.0,
                };
                cfg.progress_interval = Some(Duration::from_secs_f64(secs));
            }
            other => {
                eprintln!("unknown option `{other}` (see the doc comment)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // One recorder / event stream covers the whole table: per-row
    // attribution comes from the timestamps and (portfolio) engine tags.
    let recorder = show_stats.then(Recorder::new);
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    if let Some(path) = &trace_path {
        sinks.push(Arc::new(
            NdjsonSink::create(path).expect("--trace-json FILE must be creatable"),
        ));
    }
    if let Some(r) = &recorder {
        sinks.push(Arc::new(r.clone()));
    }
    if cfg.progress_interval.is_some() {
        sinks.push(Arc::new(HeartbeatSink));
    }
    if !sinks.is_empty() {
        cfg.obs = Obs::multi(sinks);
    }

    let backend = if cfg.use_portfolio {
        "Portfolio".to_string()
    } else {
        format!("{:?}", cfg.backend)
    };
    println!(
        "Table 1 reproduction — backend={} sim_seed={} funcdep={} optimize={}\n",
        backend, cfg.sim_seed, cfg.functional_deps, cfg.optimize
    );
    let mut rows = Vec::new();
    if pairs.is_empty() {
        let suite = iscas_alike_suite(max_regs);
        for entry in &suite {
            eprintln!(
                "running {} ({} regs)...",
                entry.name,
                entry.aig.num_latches()
            );
            rows.push(run_row(entry, &cfg));
        }
    } else {
        // Explicit circuit-file pairs: any format load_model accepts.
        for (spec_path, imp_path) in &pairs {
            let load = |p: &String| {
                load_model(p).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            };
            let (spec, imp) = (load(spec_path), load(imp_path));
            let name = std::path::Path::new(spec_path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| spec_path.clone());
            eprintln!("running {} ({} regs)...", name, spec.num_latches());
            rows.push(run_pair(&name, &spec, &imp, &cfg));
        }
    }
    println!();
    print_table(&rows);
    if let Some(r) = &recorder {
        println!("\nevent-counter totals over the whole run:");
        for (name, v) in r.nonzero_counters() {
            println!("  {name:<26} {v}");
        }
    }
    println!(
        "\nExpected shape (paper): traversal fails on deep/large rows (s838-style\n\
         counters, wide mixed circuits); the proposed method proves everything\n\
         except the multiplier-core rows s3384/s6669, which exhaust the BDD\n\
         node budget exactly as in the original experiments."
    );
}
