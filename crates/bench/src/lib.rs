//! Shared machinery for the Table 1 reproduction and the ablation
//! harnesses: per-row instance creation, the two competing checkers, and
//! table formatting.

pub mod harness;

use sec_core::{Backend, Checker, Options, OptionsBuilder, Verdict};
use sec_gen::SuiteEntry;
use sec_netlist::Aig;
use sec_obs::Obs;
use sec_portfolio::PortfolioOptions;
use sec_synth::{pipeline, PipelineOptions, RetimeOptions};
use sec_traversal::{check_equivalence, TraversalOptions, TraversalOutcome};
use std::time::Duration;

/// Configuration of one harness run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Engine for the proposed method.
    pub backend: Backend,
    /// Race the full engine portfolio for the "proposed" column instead
    /// of a single-backend checker (`--backend portfolio`).
    pub use_portfolio: bool,
    /// Random-simulation seeding on/off (ablation A).
    pub sim_seed: bool,
    /// Functional-dependency substitution on/off (ablation C).
    pub functional_deps: bool,
    /// Reachability over-approximation on/off.
    pub approx_reach: bool,
    /// BDD node budget for the proposed method (the paper's 100 MB cap).
    pub node_limit: usize,
    /// Wall-clock budget per row for the proposed method.
    pub timeout: Duration,
    /// Wall-clock budget per row for the traversal baseline.
    pub traversal_timeout: Duration,
    /// BDD node budget for the traversal baseline.
    pub traversal_node_limit: usize,
    /// Skip the (slow) baseline entirely.
    pub run_traversal: bool,
    /// Apply the combinational-optimization stages (`script.rugged`
    /// analogue); off reproduces the "retiming only" data point.
    pub optimize: bool,
    /// Seed for instance creation.
    pub seed: u64,
    /// Worker threads for the SAT backend's sharded refinement rounds
    /// (`table1 --jobs N`); 1 is single-threaded.
    pub jobs: usize,
    /// Interval between `progress` heartbeat events emitted from the
    /// engines' hot loops (`table1 --progress[=SECS]`).
    pub progress_interval: Option<Duration>,
    /// Observability handle threaded into every method run (`table1
    /// --trace-json` / `--stats`). Defaults to the inert [`Obs::off`].
    pub obs: Obs,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            backend: Backend::Bdd,
            use_portfolio: false,
            sim_seed: true,
            functional_deps: true,
            approx_reach: false,
            node_limit: 8 << 20,
            timeout: Duration::from_secs(120),
            traversal_timeout: Duration::from_secs(30),
            traversal_node_limit: 4 << 20,
            run_traversal: true,
            optimize: true,
            seed: 0xDA7E,
            jobs: 1,
            progress_interval: None,
            obs: Obs::off(),
        }
    }
}

/// Builds the "optimized" implementation for a suite row, mirroring the
/// paper's kerneling + retiming + `script.rugged` flow. A couple of rows
/// get deeper retiming so the lag-1 extension is exercised, as in the
/// paper's table (where a few rows report 1–4 retiming invocations).
pub fn make_instance(entry: &SuiteEntry, cfg: &RunConfig) -> Aig {
    let deep_retiming = matches!(entry.name, "s526" | "s1423" | "s13207");
    let po = PipelineOptions {
        retime: RetimeOptions {
            probability: 0.7,
            rounds: if deep_retiming { 2 } else { 1 },
        },
        reassociate_probability: if cfg.optimize { 0.5 } else { 0.0 },
        rewrite_probability: if cfg.optimize { 0.25 } else { 0.0 },
        unshare_probability: if cfg.optimize { 0.4 } else { 0.0 },
        balance: cfg.optimize,
    };
    pipeline(&entry.aig, &po, cfg.seed ^ entry.aig.num_latches() as u64)
}

/// Result of running one method on one row.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// `EQ`, `NEQ`, `fail(...)`.
    pub status: String,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Peak BDD nodes (0 for SAT).
    pub nodes: usize,
    /// Iterations (image steps / fixed-point rounds).
    pub iterations: usize,
    /// Retiming-extension invocations (proposed method only).
    pub retime_invocations: usize,
    /// Matched-signal percentage (proposed method only).
    pub eqs_percent: f64,
    /// Winning engine name (portfolio runs only).
    pub winner: Option<String>,
    /// The full run statistics (solo proposed-method runs only), so
    /// `table1 --json` can emit the canonical `stats::to_json` object.
    pub stats: Option<sec_core::CheckStats>,
}

/// One table row: both methods on one benchmark.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name (ISCAS'89 analogue).
    pub name: String,
    /// Registers before synthesis.
    pub regs_orig: usize,
    /// Registers after synthesis.
    pub regs_opt: usize,
    /// Baseline result, if run.
    pub traversal: Option<MethodResult>,
    /// Proposed-method result.
    pub proposed: MethodResult,
}

/// Runs the proposed method on an instance. SAT rows start from the
/// [`Options::sat`] preset, so the candidate-set reduction pipeline
/// (strash + pattern bank + batched queries) is on exactly as for
/// `sec check --engine sat`.
pub fn run_proposed(spec: &Aig, imp: &Aig, cfg: &RunConfig) -> MethodResult {
    let base = if cfg.backend == Backend::Sat {
        OptionsBuilder::sat()
    } else {
        Options::builder()
    };
    let opts = base
        .backend(cfg.backend)
        .jobs(cfg.jobs)
        .sim_cycles(if cfg.sim_seed { 16 } else { 0 })
        .functional_deps(cfg.functional_deps)
        .approx_reach(cfg.approx_reach)
        .node_limit(cfg.node_limit)
        .timeout(Some(cfg.timeout))
        .bmc_depth(0) // the paper's tool proves or gives up; no BMC here
        .progress_interval(cfg.progress_interval)
        .obs(cfg.obs.clone())
        .build();
    let r = Checker::new(spec, imp, opts)
        .expect("suite instances are well-formed")
        .run();
    MethodResult {
        status: verdict_status(&r.verdict),
        secs: r.stats.time.as_secs_f64(),
        nodes: r.stats.peak_bdd_nodes,
        iterations: r.stats.iterations,
        retime_invocations: r.stats.retime_invocations,
        eqs_percent: r.stats.eqs_percent,
        winner: None,
        stats: Some(r.stats),
    }
}

/// The table's status cell for a verdict.
fn verdict_status(v: &Verdict) -> String {
    match v {
        Verdict::Equivalent => "EQ".to_string(),
        Verdict::Inequivalent(_) => "NEQ".to_string(),
        Verdict::Unknown(w) if w.contains("overflow") => "fail(mem)".to_string(),
        Verdict::Unknown(w) if w.contains("timeout") => "fail(time)".to_string(),
        _ => "fail(incomplete)".to_string(),
    }
}

/// Runs the engine portfolio on an instance. The whole race gets the
/// proposed-method budget; the winner's name lands in the table.
pub fn run_portfolio(spec: &Aig, imp: &Aig, cfg: &RunConfig) -> MethodResult {
    let opts = PortfolioOptions {
        timeout: Some(cfg.timeout),
        seed: cfg.seed,
        jobs: cfg.jobs,
        node_limit: cfg.node_limit,
        traversal_node_limit: cfg.traversal_node_limit,
        progress_interval: cfg.progress_interval,
        obs: cfg.obs.clone(),
        ..PortfolioOptions::default()
    };
    let r = sec_portfolio::run(spec, imp, &opts).expect("suite instances are well-formed");
    let winner_report = r
        .winner
        .and_then(|w| r.reports.iter().find(|rep| rep.engine == w));
    MethodResult {
        status: verdict_status(&r.verdict),
        secs: r.time.as_secs_f64(),
        nodes: r
            .reports
            .iter()
            .map(|rep| rep.peak_bdd_nodes)
            .max()
            .unwrap_or(0),
        iterations: winner_report
            .map(|rep| rep.iterations as usize)
            .unwrap_or(0),
        retime_invocations: 0,
        eqs_percent: 0.0,
        winner: r.winner.map(|w| w.name().to_string()),
        stats: None,
    }
}

/// Runs the traversal baseline on an instance.
pub fn run_traversal(spec: &Aig, imp: &Aig, cfg: &RunConfig) -> MethodResult {
    let opts = TraversalOptions {
        node_limit: cfg.traversal_node_limit,
        max_iterations: usize::MAX,
        register_correspondence: true,
        sift: false,
        timeout: Some(cfg.traversal_timeout),
        cancel: None,
        progress: None,
        progress_interval: cfg.progress_interval,
        obs: cfg.obs.clone(),
    };
    let t0 = std::time::Instant::now();
    let (out, stats) = check_equivalence(spec, imp, &opts).expect("interfaces match");
    MethodResult {
        status: match out {
            TraversalOutcome::Equivalent => "EQ".to_string(),
            TraversalOutcome::Inequivalent(_) => "NEQ".to_string(),
            TraversalOutcome::ResourceOut(w) if w.contains("timeout") => "fail(time)".to_string(),
            TraversalOutcome::ResourceOut(_) => "fail(mem)".to_string(),
        },
        secs: t0.elapsed().as_secs_f64(),
        nodes: stats.peak_nodes,
        iterations: stats.iterations,
        retime_invocations: 0,
        eqs_percent: 0.0,
        winner: None,
        stats: None,
    }
}

/// Runs one full row.
pub fn run_row(entry: &SuiteEntry, cfg: &RunConfig) -> Row {
    let imp = make_instance(entry, cfg);
    let traversal = cfg
        .run_traversal
        .then(|| run_traversal(&entry.aig, &imp, cfg));
    let proposed = if cfg.use_portfolio {
        run_portfolio(&entry.aig, &imp, cfg)
    } else {
        run_proposed(&entry.aig, &imp, cfg)
    };
    Row {
        name: entry.name.to_string(),
        regs_orig: entry.aig.num_latches(),
        regs_opt: imp.num_latches(),
        traversal,
        proposed,
    }
}

/// Runs one full row on an explicit spec/impl pair (no instance
/// synthesis), for `table1 --pair` and format smoke checks.
pub fn run_pair(name: &str, spec: &Aig, imp: &Aig, cfg: &RunConfig) -> Row {
    let traversal = cfg.run_traversal.then(|| run_traversal(spec, imp, cfg));
    let proposed = if cfg.use_portfolio {
        run_portfolio(spec, imp, cfg)
    } else {
        run_proposed(spec, imp, cfg)
    };
    Row {
        name: name.to_string(),
        regs_orig: spec.num_latches(),
        regs_opt: imp.num_latches(),
        traversal,
        proposed,
    }
}

/// Prints the rows in the layout of the paper's Table 1.
pub fn print_table(rows: &[Row]) {
    println!(
        "{:<8} {:>9} | {:^28} | {:^40}",
        "", "#regs", "symbolic traversal", "proposed method"
    );
    println!(
        "{:<8} {:>9} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>10} {:>6}",
        "circuit", "orig/opt", "time(s)", "nodes", "#its", "time(s)", "nodes", "#its", "eqs%"
    );
    println!("{}", "-".repeat(95));
    let mut eqs_sum = 0.0;
    let mut eqs_n = 0usize;
    for r in rows {
        let trav = match &r.traversal {
            Some(t) => format!(
                "{:>10} {:>10} {:>6}",
                if t.status == "EQ" {
                    format!("{:.2}", t.secs)
                } else {
                    t.status.clone()
                },
                t.nodes,
                t.iterations
            ),
            None => format!("{:>10} {:>10} {:>6}", "-", "-", "-"),
        };
        let p = &r.proposed;
        let its = format!("{} ({})", p.iterations, p.retime_invocations);
        let winner = p
            .winner
            .as_deref()
            .map(|w| format!("  [{w}]"))
            .unwrap_or_default();
        println!(
            "{:<8} {:>4}/{:<4} | {} | {:>10} {:>10} {:>10} {:>6.0}{}",
            r.name,
            r.regs_orig,
            r.regs_opt,
            trav,
            if p.status == "EQ" {
                format!("{:.2}", p.secs)
            } else {
                p.status.clone()
            },
            p.nodes,
            its,
            p.eqs_percent,
            winner
        );
        if p.status == "EQ" {
            eqs_sum += p.eqs_percent;
            eqs_n += 1;
        }
    }
    println!("{}", "-".repeat(95));
    if eqs_n > 0 {
        println!(
            "average equivalences over proven rows: {:.0}%",
            eqs_sum / eqs_n as f64
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_gen::iscas_alike_suite;

    #[test]
    fn small_row_runs_both_methods() {
        let suite = iscas_alike_suite(10);
        let entry = &suite[0];
        let cfg = RunConfig {
            traversal_timeout: Duration::from_secs(20),
            ..RunConfig::default()
        };
        let row = run_row(entry, &cfg);
        assert_eq!(row.proposed.status, "EQ");
        assert!(row.traversal.is_some());
        assert!(row.regs_orig > 0);
    }

    #[test]
    fn retime_only_config_disables_rewrites() {
        let suite = iscas_alike_suite(10);
        let cfg = RunConfig {
            optimize: false,
            run_traversal: false,
            ..RunConfig::default()
        };
        let imp = make_instance(&suite[0], &cfg);
        assert!(imp.num_latches() > 0);
        let row_cfg = cfg.clone();
        let r = run_proposed(&suite[0].aig, &imp, &row_cfg);
        assert_eq!(r.status, "EQ");
        // Retiming alone preserves nearly all internal equivalences.
        assert!(r.eqs_percent >= 90.0, "eqs = {}", r.eqs_percent);
    }
}
