//! Incremental vs monolithic SAT fixed point.
//!
//! Runs the same equivalence checks once per configuration and writes a
//! machine-readable comparison — refinement rounds, solver
//! constructions, solve calls, conflicts, wall-clock — to
//! `BENCH_sat_incremental.json` at the repository root, so the effect
//! of the persistent solver and counterexample amplification is
//! tracked as a number instead of an anecdote.
//!
//! Not a criterion timing loop on purpose: the quantities of interest
//! (rounds, calls, conflicts) are deterministic per configuration, and
//! the wall-clock column is the median of a few full runs.

use sec_core::{Checker, Options, Verdict};
use sec_gen::{counter, mixed, CounterKind};
use sec_netlist::Aig;
use sec_obs::{Obs, Recorder};
use sec_synth::{forward_retime, unshare_latch_cones, RetimeOptions};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One configuration's measurements on one circuit pair.
struct Run {
    rounds: usize,
    solver_constructions: usize,
    solver_calls: u64,
    conflicts: u64,
    wall_ms: f64,
    verdict: String,
    /// All nonzero event counters of the timed run, straight from the
    /// recorder the `CheckStats` fields above are derived from.
    events: Vec<(&'static str, u64)>,
}

fn measure(spec: &Aig, imp: &Aig, base: Options) -> Run {
    // One fixed point, no refutation machinery: measure the iteration
    // itself.
    let mut opts = base;
    opts.retime_rounds = 0;
    opts.bmc_depth = 0;
    opts.sim_refute = false;
    // Wall-clock is measured with the default null sink (the production
    // configuration); a separate recorder-attached run collects the
    // event totals. The counters are deterministic per configuration,
    // so the two runs count the same work.
    let mut wall = Vec::new();
    let mut last = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = Checker::new(spec, imp, opts.clone()).unwrap().run();
        wall.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    let recorder = Recorder::new();
    let mut counted = opts.clone();
    counted.obs = Obs::multi(vec![Arc::new(recorder.clone())]);
    let rc = Checker::new(spec, imp, counted).unwrap().run();
    let r = last.unwrap();
    assert_eq!(
        rc.stats.iterations, r.stats.iterations,
        "instrumented run must do identical work"
    );
    wall.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Run {
        rounds: r.stats.iterations,
        solver_constructions: r.stats.sat_solver_constructions,
        solver_calls: r.stats.sat_solver_calls,
        conflicts: r.stats.sat_conflicts,
        wall_ms: wall[wall.len() / 2],
        verdict: match r.verdict {
            Verdict::Equivalent => "equivalent".into(),
            Verdict::Inequivalent(_) => "inequivalent".into(),
            _ => "unknown".into(),
        },
        events: recorder.nonzero_counters(),
    }
}

fn json_run(out: &mut String, name: &str, r: &Run) {
    let events: Vec<String> = r
        .events
        .iter()
        .map(|(n, v)| format!("\"{n}\": {v}"))
        .collect();
    write!(
        out,
        "    \"{name}\": {{ \"rounds\": {}, \"solver_constructions\": {}, \
         \"solver_calls\": {}, \"conflicts\": {}, \"wall_ms\": {:.3}, \
         \"verdict\": \"{}\",\n      \"events\": {{ {} }} }}",
        r.rounds,
        r.solver_constructions,
        r.solver_calls,
        r.conflicts,
        r.wall_ms,
        r.verdict,
        events.join(", ")
    )
    .unwrap();
}

fn main() {
    let pairs: Vec<(&str, Aig, Aig)> = vec![
        {
            let spec = counter(8, CounterKind::Binary);
            let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
            ("counter8_retimed", spec, imp)
        },
        {
            let spec = mixed(16, 5);
            let imp = unshare_latch_cones(&spec, 0.9, 4);
            ("mixed16_unshared", spec, imp)
        },
        {
            let spec = mixed(24, 9);
            let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
            ("mixed24_retimed", spec, imp)
        },
    ];

    let mut out = String::from("{\n  \"benchmark\": \"sat_incremental\",\n  \"rows\": [\n");
    let (mut tot_mono, mut tot_inc) = (0u64, 0u64);
    for (i, (name, spec, imp)) in pairs.iter().enumerate() {
        let mono = measure(spec, imp, Options::sat_monolithic());
        let inc = measure(spec, imp, Options::sat());
        assert_eq!(
            mono.verdict, inc.verdict,
            "{name}: configurations must agree on the verdict"
        );
        println!(
            "{name:18} monolithic: {:3} rounds {:4} calls {:5} conflicts {:8.2} ms | \
             incremental: {:3} rounds {:4} calls {:5} conflicts {:8.2} ms",
            mono.rounds,
            mono.solver_calls,
            mono.conflicts,
            mono.wall_ms,
            inc.rounds,
            inc.solver_calls,
            inc.conflicts,
            inc.wall_ms
        );
        tot_mono += mono.conflicts;
        tot_inc += inc.conflicts;
        out.push_str("  {\n");
        writeln!(out, "    \"pair\": \"{name}\",").unwrap();
        json_run(&mut out, "monolithic", &mono);
        out.push_str(",\n");
        json_run(&mut out, "incremental", &inc);
        out.push('\n');
        out.push_str(if i + 1 == pairs.len() {
            "  }\n"
        } else {
            "  },\n"
        });
    }
    writeln!(
        out,
        "  ],\n  \"total_conflicts\": {{ \"monolithic\": {tot_mono}, \"incremental\": {tot_inc} }}\n}}"
    )
    .unwrap();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sat_incremental.json"
    );
    std::fs::write(path, &out).expect("write BENCH_sat_incremental.json");
    println!("total conflicts: monolithic {tot_mono}, incremental {tot_inc}");
    println!("wrote {path}");
}
