//! Overhead of the trace instrumentation: latency histograms and
//! progress heartbeats vs the null sink.
//!
//! Two layers of measurement, written to `BENCH_trace_overhead.json` at
//! the repository root:
//!
//! * **Per-site micro cost** — the disabled (null-sink) price of one
//!   instrumentation site, in nanoseconds: a `Obs::observe` call, a
//!   `Obs::timer`/`observe_elapsed` pair, and one `ProgressTicker`
//!   poll. DESIGN.md §9 budgets 1–2 ns per site; the numbers here keep
//!   that bound honest.
//! * **Whole-check macro cost** — median wall-clock of the same SAT
//!   fixed point under three configurations: null sink, recorder
//!   (histograms live), and recorder plus sub-millisecond heartbeats.
//!   The instrumented runs must do identical work (same rounds), so
//!   any delta is pure instrumentation.
//!
//! Not a criterion loop on purpose: per-site costs are tight loops over
//! fixed iteration counts, and the macro rows are medians of full runs.

use sec_core::{Checker, Options, OptionsBuilder};
use sec_gen::{counter, CounterKind};
use sec_netlist::Aig;
use sec_obs::{Histogram, MetricsRegistry, Obs, ProgressTicker, Recorder};
use sec_synth::{forward_retime, RetimeOptions};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MICRO_ITERS: u64 = 20_000_000;
const MACRO_RUNS: usize = 5;

/// Nanoseconds per iteration of `f` over [`MICRO_ITERS`] calls.
fn ns_per_iter(mut f: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..MICRO_ITERS {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / MICRO_ITERS as f64
}

/// Median wall-clock of the check under `opts`, plus the rounds it took
/// (identical across configurations, asserted by the caller).
fn measure(spec: &Aig, imp: &Aig, opts: &Options) -> (f64, usize) {
    let mut wall = Vec::with_capacity(MACRO_RUNS);
    let mut rounds = 0;
    for _ in 0..MACRO_RUNS {
        let t0 = Instant::now();
        let r = Checker::new(spec, imp, opts.clone()).unwrap().run();
        wall.push(t0.elapsed().as_secs_f64() * 1e3);
        rounds = r.stats.iterations;
    }
    wall.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (wall[wall.len() / 2], rounds)
}

fn main() {
    // --- per-site micro costs on a disabled handle -------------------
    let off = Obs::off();
    let observe_ns = ns_per_iter(|i| off.observe(Histogram::SatCallUs, black_box(i & 1023)));
    let timer_ns = ns_per_iter(|_| {
        let t = off.timer();
        off.observe_elapsed(Histogram::SatCallUs, black_box(t));
    });
    let mut ticker = ProgressTicker::disabled();
    let ticker_ns = ns_per_iter(|_| {
        black_box(ticker.ready());
    });
    println!(
        "null-sink per-site cost: observe {observe_ns:.2} ns, \
         timer+observe_elapsed {timer_ns:.2} ns, ticker poll {ticker_ns:.2} ns"
    );

    // --- registry per-site costs -------------------------------------
    // The serve layer's aggregated instruments (lifetime total + 60 s
    // window). These fire once per *request*, never on engine hot
    // paths, but the per-site price is kept on record anyway.
    let registry = MetricsRegistry::new();
    let req_counter = registry.counter("bench_requests_total", "bench fixture");
    let counter_ns = ns_per_iter(|_| req_counter.inc(black_box(1)));
    let lat_hist = registry.histogram("bench_latency_us", "bench fixture");
    let registry_observe_ns = ns_per_iter(|i| lat_hist.observe(black_box(i & 1023)));
    println!(
        "registry per-site cost: counter inc {counter_ns:.2} ns, \
         histogram observe {registry_observe_ns:.2} ns"
    );

    // --- whole-check macro cost --------------------------------------
    let spec = counter(8, CounterKind::Binary);
    let imp = forward_retime(&spec, &RetimeOptions::default(), 1);
    let base = OptionsBuilder::sat()
        .retime_rounds(0)
        .bmc_depth(0)
        .sim_refute(false)
        .build();
    let (null_ms, null_rounds) = measure(&spec, &imp, &base);
    let mut hist = base.clone();
    hist.obs = Obs::multi(vec![Arc::new(Recorder::new())]);
    let (hist_ms, hist_rounds) = measure(&spec, &imp, &hist);
    let mut beat = base.clone();
    beat.obs = Obs::multi(vec![Arc::new(Recorder::new())]);
    beat.progress_interval = Some(Duration::from_micros(100));
    let (beat_ms, beat_rounds) = measure(&spec, &imp, &beat);
    assert_eq!(
        null_rounds, hist_rounds,
        "instrumented run must do identical work"
    );
    assert_eq!(
        null_rounds, beat_rounds,
        "heartbeats must not change the work done"
    );
    println!(
        "counter8_retimed ({null_rounds} rounds): null {null_ms:.3} ms, \
         histograms {hist_ms:.3} ms, +heartbeats {beat_ms:.3} ms"
    );

    let mut out = String::from("{\n  \"benchmark\": \"trace_overhead\",\n");
    writeln!(
        out,
        "  \"null_site_ns\": {{ \"observe\": {observe_ns:.3}, \
         \"timer_observe_elapsed\": {timer_ns:.3}, \"ticker_poll\": {ticker_ns:.3} }},"
    )
    .unwrap();
    writeln!(
        out,
        "  \"registry_site_ns\": {{ \"counter_inc\": {counter_ns:.3}, \
         \"histogram_observe\": {registry_observe_ns:.3} }},"
    )
    .unwrap();
    writeln!(
        out,
        "  \"check_wall_ms\": {{ \"pair\": \"counter8_retimed\", \"rounds\": {null_rounds}, \
         \"null_sink\": {null_ms:.3}, \"histograms\": {hist_ms:.3}, \
         \"heartbeats_100us\": {beat_ms:.3} }}\n}}"
    )
    .unwrap();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trace_overhead.json"
    );
    std::fs::write(path, &out).expect("write BENCH_trace_overhead.json");
    println!("wrote {path}");
}
