//! Portfolio wall-clock vs. the best solo engine on three instance
//! classes with *different* best engines: the binary/one-hot counter
//! pair (van Eijk's incompleteness example — only exact traversal
//! proves it), a registered multiplier row (signal-correspondence
//! territory), and a mutated, genuinely inequivalent instance (BMC
//! finds the counterexample). The portfolio should track the best solo
//! engine to within scheduling overhead on each — without being told in
//! advance which engine that is.

use sec_bench::harness::{BenchmarkId, Criterion};
use sec_bench::{criterion_group, criterion_main};
use sec_core::{bmc_refute, Checker, Options, OptionsBuilder, Verdict};
use sec_gen::{counter, counter_pair_onehot, registered_multiplier, CounterKind};
use sec_portfolio::PortfolioOptions;
use sec_synth::{mutate_detectable, pipeline, PipelineOptions};
use sec_traversal::{check_equivalence, TraversalOptions, TraversalOutcome};
use std::time::Duration;

fn popts() -> PortfolioOptions {
    PortfolioOptions {
        timeout: Some(Duration::from_secs(60)),
        ..PortfolioOptions::default()
    }
}

/// Binary vs. one-hot counter: correspondence degrades to Unknown, so
/// the best solo engine is the exact traversal.
fn bench_incompleteness_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("portfolio_incompleteness_pair");
    g.sample_size(10);
    let w = 5usize;
    let (spec, imp) = counter_pair_onehot(w);
    g.bench_with_input(BenchmarkId::new("solo_traversal", w), &w, |b, _| {
        b.iter(|| {
            let opts = TraversalOptions {
                timeout: Some(Duration::from_secs(60)),
                ..TraversalOptions::default()
            };
            let (out, _) = check_equivalence(&spec, &imp, &opts).unwrap();
            assert!(matches!(out, TraversalOutcome::Equivalent));
        })
    });
    g.bench_with_input(BenchmarkId::new("portfolio", w), &w, |b, _| {
        b.iter(|| {
            let r = sec_portfolio::run(&spec, &imp, &popts()).unwrap();
            assert_eq!(r.verdict, Verdict::Equivalent);
        })
    });
    g.finish();
}

/// Registered multiplier vs. its retimed twin: classic correspondence
/// territory, so the best solo engine is the BDD fixed point.
fn bench_multiplier_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("portfolio_multiplier");
    g.sample_size(10);
    let w = 3usize;
    let spec = registered_multiplier(w, 2);
    let imp = pipeline(&spec, &PipelineOptions::retime_only(), 7);
    g.bench_with_input(BenchmarkId::new("solo_bdd_corr", w), &w, |b, _| {
        b.iter(|| {
            let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
            assert_eq!(r.verdict, Verdict::Equivalent);
        })
    });
    g.bench_with_input(BenchmarkId::new("portfolio", w), &w, |b, _| {
        b.iter(|| {
            let r = sec_portfolio::run(&spec, &imp, &popts()).unwrap();
            assert_eq!(r.verdict, Verdict::Equivalent);
        })
    });
    g.finish();
}

/// Mutated (behaviour-changing) instance: refutation work, so the best
/// solo engine is plain BMC.
fn bench_mutated_instance(c: &mut Criterion) {
    let mut g = c.benchmark_group("portfolio_mutant");
    g.sample_size(10);
    let w = 8usize;
    let spec = counter(w, CounterKind::Binary);
    let (mutant, _) =
        mutate_detectable(&spec, 0xBADC0DE, 64, 16).expect("a detectable mutation exists");
    g.bench_with_input(BenchmarkId::new("solo_bmc", w), &w, |b, _| {
        b.iter(|| {
            let opts = OptionsBuilder::new().bmc_depth(64).build();
            let r = bmc_refute(&spec, &mutant, &opts).unwrap();
            assert!(matches!(r.verdict, Verdict::Inequivalent(_)));
        })
    });
    g.bench_with_input(BenchmarkId::new("portfolio", w), &w, |b, _| {
        b.iter(|| {
            let r = sec_portfolio::run(&spec, &mutant, &popts()).unwrap();
            assert!(matches!(r.verdict, Verdict::Inequivalent(_)));
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_incompleteness_pair,
    bench_multiplier_row,
    bench_mutated_instance
);
criterion_main!(benches);
