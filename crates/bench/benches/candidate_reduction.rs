//! Candidate-set reduction pipeline: solver calls with the pipeline
//! off vs on.
//!
//! Runs the two largest suite rows (s13207, s15850) through the SAT
//! fixed point twice — once with structural collapsing, the pattern
//! bank and batched queries all disabled, once with the `Options::sat`
//! preset — and writes the before/after `sat_solver_calls` (plus the
//! pipeline's own counters and the reduction ratio) to
//! `BENCH_candidate_reduction.json` at the repository root. The two
//! configurations must agree on verdict, final class count and
//! `eqs (%)`: the pipeline changes which queries run, never the fixed
//! point.

use sec_bench::{make_instance, RunConfig};
use sec_core::{Backend, Checker, Options, Verdict};
use sec_gen::iscas_alike_suite;
use sec_netlist::Aig;
use std::fmt::Write as _;
use std::time::Instant;

struct Run {
    solver_calls: u64,
    rounds: usize,
    classes: usize,
    eqs_percent: f64,
    strash_merged: u64,
    bank_splits: u64,
    batched_calls: u64,
    batch_pairs_decoded: u64,
    wall_ms: f64,
    verdict: String,
}

fn measure(spec: &Aig, imp: &Aig, opts: Options) -> Run {
    let t0 = Instant::now();
    let r = Checker::new(spec, imp, opts).unwrap().run();
    Run {
        solver_calls: r.stats.sat_solver_calls,
        rounds: r.stats.iterations,
        classes: r.stats.classes,
        eqs_percent: r.stats.eqs_percent,
        strash_merged: r.stats.strash_merged,
        bank_splits: r.stats.bank_splits,
        batched_calls: r.stats.batched_calls,
        batch_pairs_decoded: r.stats.batch_pairs_decoded,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        verdict: match r.verdict {
            Verdict::Equivalent => "equivalent".into(),
            Verdict::Inequivalent(_) => "inequivalent".into(),
            _ => "unknown".into(),
        },
    }
}

fn json_run(out: &mut String, name: &str, r: &Run) {
    write!(
        out,
        "    \"{name}\": {{ \"sat_solver_calls\": {}, \"rounds\": {}, \
         \"classes\": {}, \"eqs_percent\": {:.2}, \"strash_merged\": {}, \
         \"bank_splits\": {}, \"batched_calls\": {}, \
         \"batch_pairs_decoded\": {}, \"wall_ms\": {:.3}, \"verdict\": \"{}\" }}",
        r.solver_calls,
        r.rounds,
        r.classes,
        r.eqs_percent,
        r.strash_merged,
        r.bank_splits,
        r.batched_calls,
        r.batch_pairs_decoded,
        r.wall_ms,
        r.verdict
    )
    .unwrap();
}

fn main() {
    const ROWS: [&str; 2] = ["s13207", "s15850"];
    let cfg = RunConfig {
        backend: Backend::Sat,
        run_traversal: false,
        ..RunConfig::default()
    };
    let suite = iscas_alike_suite(usize::MAX);

    let mut out = String::from("{\n  \"benchmark\": \"candidate_reduction\",\n  \"rows\": [\n");
    for (i, name) in ROWS.iter().enumerate() {
        let entry = suite
            .iter()
            .find(|e| e.name == *name)
            .expect("suite row exists");
        let imp = make_instance(entry, &cfg);

        let mut off_opts = Options::sat();
        off_opts.strash = false;
        off_opts.pattern_bank_words = 0;
        off_opts.batch_pairs = 0;
        let off = measure(&entry.aig, &imp, off_opts);
        let on = measure(&entry.aig, &imp, Options::sat());

        assert_eq!(off.verdict, on.verdict, "{name}: verdict must not change");
        assert_eq!(off.classes, on.classes, "{name}: partition must not change");
        assert_eq!(
            off.eqs_percent, on.eqs_percent,
            "{name}: eqs% must not change"
        );
        let ratio = off.solver_calls as f64 / on.solver_calls.max(1) as f64;
        println!(
            "{name:8} off: {:>8} calls {:>9.1} ms | on: {:>7} calls {:>9.1} ms | {ratio:6.1}x fewer",
            off.solver_calls, off.wall_ms, on.solver_calls, on.wall_ms
        );

        out.push_str("  {\n");
        writeln!(out, "    \"circuit\": \"{name}\",").unwrap();
        json_run(&mut out, "pipeline_off", &off);
        out.push_str(",\n");
        json_run(&mut out, "pipeline_on", &on);
        out.push_str(",\n");
        writeln!(out, "    \"reduction_ratio\": {ratio:.2}").unwrap();
        out.push_str(if i + 1 == ROWS.len() {
            "  }\n"
        } else {
            "  },\n"
        });
    }
    out.push_str("  ]\n}\n");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_candidate_reduction.json"
    );
    std::fs::write(path, &out).expect("write BENCH_candidate_reduction.json");
    println!("wrote {path}");
}
