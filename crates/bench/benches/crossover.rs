//! The crossover between exact traversal and signal correspondence: on
//! shallow state spaces the complete method is competitive; as the
//! counter widens the traversal cost explodes with the state depth while
//! the proposed method stays flat — Table 1's qualitative story as a
//! parameter sweep.

use sec_bench::harness::{BenchmarkId, Criterion};
use sec_bench::{criterion_group, criterion_main};
use sec_core::{Checker, Options, Verdict};
use sec_gen::{counter, CounterKind};
use sec_synth::{pipeline, PipelineOptions};
use sec_traversal::{check_equivalence, TraversalOptions, TraversalOutcome};
use std::time::Duration;

fn bench_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("crossover_counter");
    g.sample_size(10);
    for w in [4usize, 6, 8, 10] {
        let spec = counter(w, CounterKind::Binary);
        let imp = pipeline(&spec, &PipelineOptions::retime_only(), 3);
        g.bench_with_input(BenchmarkId::new("traversal", w), &w, |b, _| {
            let opts = TraversalOptions {
                timeout: Some(Duration::from_secs(60)),
                ..TraversalOptions::default()
            };
            b.iter(|| {
                let (out, _) = check_equivalence(&spec, &imp, &opts).unwrap();
                assert!(matches!(out, TraversalOutcome::Equivalent));
            })
        });
        g.bench_with_input(BenchmarkId::new("proposed", w), &w, |b, _| {
            b.iter(|| {
                let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
                assert_eq!(r.verdict, Verdict::Equivalent);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
