//! Sharded parallel refinement rounds vs the serial incremental path.
//!
//! Runs the largest SAT-backend Table 1 instances at `jobs ∈ {1, 2, 4,
//! 8}` and writes wall-clock plus the full per-run statistics to
//! `BENCH_parallel_rounds.json` at the repository root. The final
//! partitions, verdicts, and total splits are identical by construction
//! (the driver merges worker counterexamples in canonical order; the
//! fixed point is unique) — but with the work-stealing rounds the
//! *trajectory* counters (rounds, solver calls) legitimately shrink as
//! jobs grow: each round stops early once the pool holds enough
//! witnesses, and witness/clause sharing prunes redundant queries. The
//! headline number is wall-clock, which must improve monotonically
//! through jobs=8 even on one hardware thread (the win is fewer solver
//! calls, not more cores).
//!
//! Not a criterion timing loop on purpose: each configuration runs the
//! full check a few times and reports the median, next to the counters
//! that explain where the time went.

use sec_bench::{make_instance, run_proposed, RunConfig};
use sec_core::stats::{to_json, JsonObject};
use sec_core::Backend;
use sec_gen::iscas_alike_suite;
use std::fmt::Write as _;

const JOBS: [usize; 4] = [1, 2, 4, 8];
const ROWS: [&str; 2] = ["s13207", "s15850"];
const TIMED_RUNS: usize = 3;

fn main() {
    let suite = iscas_alike_suite(usize::MAX);
    let mut out = String::from("{\n  \"benchmark\": \"parallel_rounds\",\n  \"rows\": [\n");
    let mut speedups = Vec::new();
    for (ri, name) in ROWS.iter().enumerate() {
        let entry = suite
            .iter()
            .find(|e| e.name == *name)
            .expect("row in suite");
        let mut cfg = RunConfig {
            backend: Backend::Sat,
            // The serial baseline on the largest pair needs more than the
            // default 120 s budget; the point here is a completed-run
            // comparison, not timeout censoring.
            timeout: std::time::Duration::from_secs(420),
            ..RunConfig::default()
        };
        let imp = make_instance(entry, &cfg);
        out.push_str("  {\n");
        writeln!(out, "    \"pair\": \"{name}\",").unwrap();
        let mut base_ms = 0.0;
        for (ji, jobs) in JOBS.into_iter().enumerate() {
            cfg.jobs = jobs;
            let mut secs = Vec::new();
            let mut last = None;
            for _ in 0..TIMED_RUNS {
                let r = run_proposed(&entry.aig, &imp, &cfg);
                secs.push(r.secs);
                last = Some(r);
            }
            secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let wall_ms = secs[secs.len() / 2] * 1e3;
            let r = last.unwrap();
            let stats = r.stats.as_ref().expect("solo runs carry stats");
            println!(
                "{name:8} jobs={jobs}: {wall_ms:9.2} ms  {:3} rounds {:6} solver calls \
                 {:4} splits  [{}]",
                stats.iterations, stats.sat_solver_calls, stats.splits, r.status
            );
            if jobs == 1 {
                base_ms = wall_ms;
            } else {
                speedups.push((name.to_string(), jobs, base_ms / wall_ms));
            }
            let row = JsonObject::new()
                .usize("jobs", jobs)
                .f64("wall_ms", wall_ms, 3)
                .str("status", &r.status)
                .raw("stats", &to_json(stats))
                .finish();
            writeln!(
                out,
                "    \"jobs{jobs}\": {row}{}",
                if ji + 1 == JOBS.len() { "" } else { "," }
            )
            .unwrap();
        }
        out.push_str(if ri + 1 == ROWS.len() {
            "  }\n"
        } else {
            "  },\n"
        });
    }
    out.push_str("  ]\n}\n");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_rounds.json"
    );
    std::fs::write(path, &out).expect("write BENCH_parallel_rounds.json");
    for (name, jobs, s) in &speedups {
        println!("{name}: jobs={jobs} speedup over jobs=1: {s:.2}x");
    }
    println!("wrote {path}");
}
