//! Microbenchmarks of the SAT solver and the bit-parallel simulator.

use sec_bench::harness::{BenchmarkId, Criterion};
use sec_bench::{criterion_group, criterion_main};
use sec_gen::{mixed, CounterKind};
use sec_netlist::Aig;
use sec_sat::{AigCnf, SatLit, SatResult, Solver};
use sec_sim::{BitSim, Signatures};

#[allow(clippy::needless_range_loop)] // j indexes across two rows
fn pigeonhole(n: usize) -> Solver {
    // n pigeons, n-1 holes: classic hard UNSAT family.
    let mut s = Solver::new();
    let p: Vec<Vec<SatLit>> = (0..n)
        .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row);
    }
    for j in 0..n - 1usize {
        for a in 0..n {
            for b in a + 1..n {
                let (ca, cb) = (p[a][j], p[b][j]);
                s.add_clause(&[!ca, !cb]);
            }
        }
    }
    s
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_pigeonhole");
    for n in [6usize, 7, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert_eq!(s.solve(), SatResult::Unsat);
            })
        });
    }
    g.finish();
}

fn bench_miter_queries(c: &mut Criterion) {
    // Equivalence queries on a restructured circuit: the workload of the
    // SAT backend's per-pair checks.
    c.bench_function("sat_miter_unsat_queries", |b| {
        let spec = mixed(20, 3);
        let imp = sec_synth::reassociate(&spec, 0.8, 7);
        let pm = sec_netlist::ProductMachine::build(&spec, &imp).unwrap();
        b.iter(|| {
            let mut solver = Solver::new();
            let cnf = AigCnf::encode(&mut solver, &pm.aig);
            for &(s, i) in &pm.output_pairs {
                let d = cnf.make_diff(&mut solver, s, i);
                // Combinationally the outputs differ for *some* state, so
                // just exercise the query path.
                let _ = solver.solve_with_assumptions(&[d]);
            }
        })
    });
}

fn bench_bitsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    for regs in [50usize, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(regs), &regs, |b, &regs| {
            let aig: Aig = mixed(regs, 1);
            let mut sim = BitSim::new(&aig, 4);
            sim.reset(&aig);
            b.iter(|| {
                sim.eval(&aig);
                sim.latch_step(&aig);
            })
        });
    }
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    c.bench_function("sim_signatures_mixed100", |b| {
        let aig = mixed(100, 5);
        b.iter(|| {
            let sigs = Signatures::collect(&aig, 16, 2, 1);
            std::hint::black_box(sigs.partition(aig.vars()));
        })
    });
    c.bench_function("sim_signatures_counter16", |b| {
        let aig = sec_gen::counter(16, CounterKind::Binary);
        b.iter(|| Signatures::collect(&aig, 16, 2, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pigeonhole, bench_miter_queries, bench_bitsim, bench_signatures
}
criterion_main!(benches);
