//! Microbenchmarks of the BDD substrate: construction, quantification,
//! composition and reordering — the primitive costs behind every number
//! in Table 1.

use sec_bdd::{Bdd, BddManager, BddVar, Substitution};
use sec_bench::harness::{BenchmarkId, Criterion};
use sec_bench::{criterion_group, criterion_main};

/// Builds the equality function over 2k variables with an interleaved
/// order (linear-size BDD).
fn equality(m: &mut BddManager, k: usize) -> (Bdd, Vec<BddVar>, Vec<BddVar>) {
    let mut xs = Vec::with_capacity(k);
    let mut ys = Vec::with_capacity(k);
    for _ in 0..k {
        xs.push(m.add_var());
        ys.push(m.add_var());
    }
    let mut f = Bdd::ONE;
    for i in 0..k {
        let e = m.xnor(m.var(xs[i]), m.var(ys[i])).unwrap();
        f = m.and(f, e).unwrap();
    }
    (f, xs, ys)
}

/// The same function under the worst (separated) order — exponential
/// size; used to give sifting something to chew on.
fn equality_separated(m: &mut BddManager, k: usize) -> Bdd {
    let xs = m.add_vars(k);
    let ys = m.add_vars(k);
    let mut f = Bdd::ONE;
    for i in 0..k {
        let e = m.xnor(m.var(xs[i]), m.var(ys[i])).unwrap();
        f = m.and(f, e).unwrap();
    }
    f
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_build_equality");
    for k in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut m = BddManager::new();
                let (f, ..) = equality(&mut m, k);
                std::hint::black_box(f);
            })
        });
    }
    g.finish();
}

fn bench_exists(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_exists");
    for k in [8usize, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut m = BddManager::new();
            let (f, xs, _) = equality(&mut m, k);
            b.iter(|| {
                m.clear_cache();
                std::hint::black_box(m.exists(f, &xs[..k / 2]).unwrap());
            })
        });
    }
    g.finish();
}

fn bench_compose(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_compose");
    for k in [8usize, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut m = BddManager::new();
            let (f, xs, ys) = equality(&mut m, k);
            // Substitute each x_i by x_i ^ y_i.
            let mut s = Substitution::new();
            for i in 0..k {
                let x = m.var(xs[i]);
                let y = m.var(ys[i]);
                let g = m.xor(x, y).unwrap();
                s.set(xs[i], g);
            }
            b.iter(|| std::hint::black_box(m.compose(f, &s).unwrap()))
        });
    }
    g.finish();
}

fn bench_sift(c: &mut Criterion) {
    c.bench_function("bdd_sift_separated_equality_8", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            // Worst order: all xs before all ys.
            let f = equality_separated(&mut m, 8);
            std::hint::black_box(m.sift(&[f], 2.0));
        })
    });
}

fn bench_and_exists(c: &mut Criterion) {
    c.bench_function("bdd_and_exists_16", |b| {
        let mut m = BddManager::new();
        let (f, xs, ys) = equality(&mut m, 16);
        let g2 = {
            let mut acc = Bdd::ZERO;
            for i in 0..16 {
                let x = m.var(xs[i]);
                let y = m.var(ys[(i + 1) % 16]);
                let t = m.and(x, y).unwrap();
                acc = m.or(acc, t).unwrap();
            }
            acc
        };
        let cube = m.cube(&xs).unwrap();
        b.iter(|| {
            m.clear_cache();
            std::hint::black_box(m.and_exists(f, g2, cube).unwrap());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_exists, bench_compose, bench_sift, bench_and_exists
}
criterion_main!(benches);
