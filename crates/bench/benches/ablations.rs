//! Ablation benchmarks of the verification engine itself:
//!
//! * **A** — random-simulation seeding on/off (paper Sec. 4);
//! * **B** — BDD vs SAT backend (paper Sec. 6 outlook);
//! * **C** — functional-dependency substitution on/off (paper Sec. 4);
//! * state-depth independence — counter width sweep (the property that
//!   gives the paper its title).

use sec_bench::harness::{BenchmarkId, Criterion};
use sec_bench::{criterion_group, criterion_main};
use sec_core::{Backend, Checker, Options, OptionsBuilder, Verdict};
use sec_gen::{counter, mixed, CounterKind};
use sec_netlist::Aig;
use sec_synth::{pipeline, PipelineOptions};

fn check(spec: &Aig, imp: &Aig, opts: Options) {
    let r = Checker::new(spec, imp, opts).unwrap().run();
    assert_eq!(r.verdict, Verdict::Equivalent);
}

fn bench_state_depth_independence(c: &mut Criterion) {
    // The run time of the proposed method must stay flat as the state
    // space deepens exponentially (2^8 → 2^24 states).
    let mut g = c.benchmark_group("engine_counter_width");
    for w in [8usize, 16, 24] {
        let spec = counter(w, CounterKind::Binary);
        let imp = pipeline(&spec, &PipelineOptions::retime_only(), 5);
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| check(&spec, &imp, Options::default()))
        });
    }
    g.finish();
}

fn bench_backends(c: &mut Criterion) {
    let spec = mixed(40, 9);
    let imp = pipeline(&spec, &PipelineOptions::default(), 11);
    let mut g = c.benchmark_group("engine_backend");
    for backend in [Backend::Bdd, Backend::Sat] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                b.iter(|| check(&spec, &imp, OptionsBuilder::new().backend(backend).build()))
            },
        );
    }
    g.finish();
}

fn bench_sim_seeding(c: &mut Criterion) {
    let spec = mixed(40, 9);
    let imp = pipeline(&spec, &PipelineOptions::retime_only(), 13);
    let mut g = c.benchmark_group("engine_sim_seeding");
    for (name, cycles) in [("on", 16usize), ("off", 0)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cycles, |b, &cycles| {
            b.iter(|| {
                check(
                    &spec,
                    &imp,
                    OptionsBuilder::new().sim_cycles(cycles).build(),
                )
            })
        });
    }
    g.finish();
}

fn bench_functional_deps(c: &mut Criterion) {
    let spec = mixed(40, 9);
    let imp = pipeline(&spec, &PipelineOptions::default(), 17);
    let mut g = c.benchmark_group("engine_funcdep");
    for (name, fd) in [("on", true), ("off", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &fd, |b, &fd| {
            b.iter(|| {
                check(
                    &spec,
                    &imp,
                    OptionsBuilder::new().functional_deps(fd).build(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_state_depth_independence, bench_backends, bench_sim_seeding, bench_functional_deps
}
criterion_main!(benches);
