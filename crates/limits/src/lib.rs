//! Cooperative cancellation and deadlines, shared by every engine.
//!
//! The portfolio runner races several engines on worker threads and must
//! stop the losers the moment one produces a definitive verdict. Rust
//! threads cannot be killed from outside, so cancellation is
//! *cooperative*: every engine's hot loop polls a [`Limits`] value and
//! unwinds cleanly (leaving its manager/solver consistent) when the
//! poll reports a [`Stop`].
//!
//! The poll must be cheap enough for the hottest loops in the workspace
//! — BDD unique-table insertion and SAT propagation, both tens of
//! nanoseconds per step. [`Limits::check`] therefore reads the shared
//! [`CancellationToken`] atomic on every call (~1 ns, relaxed load) but
//! consults the wall clock only every [`POLL_STRIDE`] calls, because
//! `Instant::now` costs an order of magnitude more than the load.
//! Worst-case detection latency is `POLL_STRIDE × cost-per-step`, well
//! under a millisecond for every engine in the workspace.
//!
//! Each `Limits` value counts its own polls ([`Limits::polls`]); the
//! engines surface the tally through `sec-obs` as the
//! `cancellation_polls` counter, which turns "is the hot loop actually
//! polling?" from a code-reading exercise into a number in `--stats`.
//!
//! # Usage
//!
//! ```
//! use sec_limits::{CancellationToken, Limits, Stop};
//! use std::time::Duration;
//!
//! // The orchestrator side: one token shared by all workers.
//! let token = CancellationToken::new();
//!
//! // The engine side: a per-engine Limits polled from the hot loop.
//! let mut limits = Limits::with_token(&token).with_timeout(Some(Duration::from_secs(60)));
//! let mut step = |limits: &mut Limits| -> Result<(), Stop> {
//!     limits.check()?; // ~1 ns when not cancelled
//!     // ...one unit of work...
//!     Ok(())
//! };
//! assert_eq!(step(&mut limits), Ok(()));
//!
//! token.cancel(); // first verdict arrived; stop the losers
//! assert_eq!(step(&mut limits), Err(Stop::Cancelled));
//! assert_eq!(limits.polls(), 2);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an engine was asked to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stop {
    /// Another party (portfolio winner, user) cancelled the run.
    Cancelled,
    /// The deadline passed.
    Timeout,
}

impl Stop {
    /// Short human-readable reason, used in `Unknown(..)` verdicts.
    pub fn reason(&self) -> &'static str {
        match self {
            Stop::Cancelled => "cancelled",
            Stop::Timeout => "timeout",
        }
    }
}

impl fmt::Display for Stop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.reason())
    }
}

impl std::error::Error for Stop {}

/// A shared flag raised to stop every engine holding a clone.
///
/// Clones share the flag: the portfolio hands one token to all racing
/// engines and calls [`cancel`](CancellationToken::cancel) when the
/// first definitive verdict arrives.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A shared, monotonically increasing iteration counter.
///
/// Engines bump it once per coarse unit of work (a fixed-point
/// refinement round, a BMC frame, an image step); an observer — the
/// portfolio orchestrator — polls [`get`](ProgressCounter::get) from
/// another thread to emit live progress events without any callback
/// plumbing through the engine crates.
#[derive(Clone, Debug, Default)]
pub struct ProgressCounter {
    count: Arc<AtomicU64>,
}

impl ProgressCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter. Visible to all clones.
    #[inline]
    pub fn bump(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// How many [`Limits::check`] calls elapse between wall-clock reads.
pub const POLL_STRIDE: u32 = 1024;

/// A cancellation token plus an optional deadline, polled from hot
/// loops.
///
/// `Limits` is `Clone`: each engine gets its own copy (so the strided
/// countdown is engine-local) while the underlying token stays shared.
#[derive(Clone, Debug, Default)]
pub struct Limits {
    token: Option<CancellationToken>,
    /// A second token checked alongside the primary one. The sharded
    /// fixed-point rounds use it as a worker-pool stop flag layered on
    /// top of the run's external token: either flag interrupts the
    /// solver, and the worker disambiguates afterwards by consulting
    /// the external limits alone.
    extra_token: Option<CancellationToken>,
    deadline: Option<Instant>,
    /// Calls remaining until the next wall-clock read.
    countdown: u32,
    /// Total `check`/`check_now` calls on this value (observability:
    /// surfaced as the `cancellation_polls` counter).
    polls: u64,
}

impl Limits {
    /// No limits: every check passes. The cheapest possible poll (two
    /// `None` tests).
    pub const fn none() -> Self {
        Limits {
            token: None,
            extra_token: None,
            deadline: None,
            countdown: POLL_STRIDE,
            polls: 0,
        }
    }

    /// Limits carrying (a clone of) `token` and no deadline.
    pub fn with_token(token: &CancellationToken) -> Self {
        Limits {
            token: Some(token.clone()),
            ..Limits::none()
        }
    }

    /// Adds an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Layers a second cancellation token on top of whatever is already
    /// attached: a trip of *either* token reports [`Stop::Cancelled`].
    /// Used by the sharded refinement rounds to stop sibling workers
    /// without cancelling the whole run.
    pub fn also_token(mut self, token: &CancellationToken) -> Self {
        match self.token {
            None => self.token = Some(token.clone()),
            Some(_) => self.extra_token = Some(token.clone()),
        }
        self
    }

    /// Adds a deadline `budget` from now. A `None` budget leaves the
    /// limits unchanged (no deadline).
    pub fn with_timeout(self, budget: Option<Duration>) -> Self {
        match budget {
            Some(d) => self.with_deadline(Instant::now() + d),
            None => self,
        }
    }

    /// Whether neither a token nor a deadline is attached.
    pub fn is_unlimited(&self) -> bool {
        self.token.is_none() && self.extra_token.is_none() && self.deadline.is_none()
    }

    #[inline]
    fn token_tripped(&self) -> bool {
        self.token.as_ref().is_some_and(|t| t.is_cancelled())
            || self.extra_token.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// The cheap hot-loop poll: token every call, clock every
    /// [`POLL_STRIDE`] calls.
    #[inline]
    pub fn check(&mut self) -> Result<(), Stop> {
        self.polls += 1;
        if self.token_tripped() {
            return Err(Stop::Cancelled);
        }
        if self.deadline.is_some() {
            self.countdown = self.countdown.wrapping_sub(1);
            if self.countdown == 0 {
                self.countdown = POLL_STRIDE;
                return self.check_deadline_now();
            }
        }
        Ok(())
    }

    /// An unstrided check that always reads the clock. Call at loop
    /// boundaries that are rare but long (one fixed-point iteration, one
    /// SAT restart) so a deadline never slips by a whole stride of slow
    /// steps.
    #[inline]
    pub fn check_now(&mut self) -> Result<(), Stop> {
        self.polls += 1;
        if self.token_tripped() {
            return Err(Stop::Cancelled);
        }
        self.check_deadline_now()
    }

    /// Total [`check`](Limits::check)/[`check_now`](Limits::check_now)
    /// calls made on this value. Engine-local (clones count
    /// separately), so the owner of the hot loop reads its own tally.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    #[inline]
    fn check_deadline_now(&self) -> Result<(), Stop> {
        match self.deadline {
            Some(end) if Instant::now() >= end => Err(Stop::Timeout),
            _ => Ok(()),
        }
    }
}

/// Per-worker chunk queues with sibling stealing and integrated,
/// chunk-granular cancellation.
///
/// The sharded fixed-point rounds in `sec-core` split each round's
/// candidate pairs into chunks and hand every worker its own queue.
/// A worker pops from the *front* of its own queue and, when that runs
/// dry, steals from the *back* of the first non-empty sibling queue —
/// so no worker idles while a sibling still holds work, and the two
/// ends never contend on the same chunk.
///
/// Cancellation is observed at chunk granularity: once the attached
/// [`CancellationToken`] trips, [`StealQueues::next_chunk`] returns
/// `None` for every worker — a worker that was about to steal stops
/// instead, and undelivered chunks are simply abandoned (sound for the
/// fixed point: a skipped pair is re-enumerated next round).
///
/// # Examples
///
/// ```
/// use sec_limits::{CancellationToken, StealQueues};
///
/// let stop = CancellationToken::new();
/// let q = StealQueues::new(vec![vec![vec![1, 2], vec![3]], vec![]], &stop);
/// // Worker 1 owns nothing: it steals worker 0's back chunk.
/// assert_eq!(q.next_chunk(1), Some((vec![3], true)));
/// assert_eq!(q.next_chunk(0), Some((vec![1, 2], false)));
/// stop.cancel();
/// assert_eq!(q.next_chunk(0), None);
/// ```
#[derive(Debug)]
pub struct StealQueues<T> {
    queues: Vec<std::sync::Mutex<std::collections::VecDeque<Vec<T>>>>,
    stop: CancellationToken,
}

impl<T> StealQueues<T> {
    /// Builds the queues from one chunk list per worker (outer index =
    /// worker id) and attaches the round's stop token.
    pub fn new(chunks_per_worker: Vec<Vec<Vec<T>>>, stop: &CancellationToken) -> StealQueues<T> {
        StealQueues {
            queues: chunks_per_worker
                .into_iter()
                .map(|chunks| std::sync::Mutex::new(chunks.into_iter().collect()))
                .collect(),
            stop: stop.clone(),
        }
    }

    /// Number of per-worker queues.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// The next chunk for `worker`: the front of its own queue, else
    /// one stolen from the back of the first non-empty sibling queue
    /// (scanning `worker + 1, worker + 2, …` cyclically). Returns
    /// `None` when every queue is empty *or* the stop token has
    /// tripped; the second component reports whether the chunk was
    /// stolen.
    pub fn next_chunk(&self, worker: usize) -> Option<(Vec<T>, bool)> {
        let n = self.queues.len();
        for k in 0..n {
            if self.stop.is_cancelled() {
                return None;
            }
            let wid = (worker + k) % n;
            let mut q = self.queues[wid].lock().expect("steal queue poisoned");
            let chunk = if k == 0 { q.pop_front() } else { q.pop_back() };
            if let Some(chunk) = chunk {
                return Some((chunk, k != 0));
            }
        }
        None
    }
}

/// Sanity-clamps a requested worker count against the machine.
///
/// Returns the count to actually use plus a warning message when the
/// request was clamped. Worker counts beyond 4× the available
/// parallelism only add scheduling overhead and memory, so they are
/// treated as typos (`--jobs 4000` for `--jobs 4`) rather than obeyed.
/// Zero is *not* handled here — callers must reject it as a usage
/// error before calling, because "no workers" is a request that can
/// never be satisfied rather than one to round to something sensible.
///
/// # Examples
///
/// ```
/// let (jobs, warning) = sec_limits::effective_jobs(2);
/// assert_eq!(jobs, 2);
/// assert!(warning.is_none());
/// ```
pub fn effective_jobs(requested: usize) -> (usize, Option<String>) {
    assert!(requested >= 1, "reject --jobs 0 before calling");
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap = available.saturating_mul(4);
    if requested > cap {
        let warning = format!(
            "warning: --jobs {requested} exceeds 4x available parallelism \
             ({available}); clamping to {cap}"
        );
        (cap, Some(warning))
    } else {
        (requested, None)
    }
}

/// Paces a fixed-period sampling loop — the daemon's gauge sampler
/// polls this at some convenient cadence and takes a metrics sample
/// whenever it fires.
///
/// Unlike `sec_obs::ProgressTicker` (optional interval, event-stream
/// pacing) this ticker always has a period, counts its firings, and is
/// due *immediately* on the first poll, so a sampler thread records a
/// baseline sample at startup instead of one period in.
///
/// # Examples
///
/// ```
/// use sec_limits::SampleTicker;
/// use std::time::Duration;
///
/// let mut t = SampleTicker::new(Duration::from_millis(1));
/// assert!(t.ready(), "first poll fires immediately");
/// assert!(!t.ready(), "then re-arms the period");
/// std::thread::sleep(Duration::from_millis(2));
/// assert!(t.ready());
/// assert_eq!(t.samples(), 2);
/// ```
#[derive(Debug)]
pub struct SampleTicker {
    period: Duration,
    next: Instant,
    samples: u64,
}

impl SampleTicker {
    /// A ticker firing every `period`, due immediately.
    pub fn new(period: Duration) -> SampleTicker {
        SampleTicker {
            period,
            next: Instant::now(),
            samples: 0,
        }
    }

    /// Polls the ticker: `true` when a sample is due (arms the next
    /// one `period` from *now*, so a stalled sampler doesn't fire a
    /// burst to catch up).
    pub fn ready(&mut self) -> bool {
        let now = Instant::now();
        if now >= self.next {
            self.next = now + self.period;
            self.samples += 1;
            true
        } else {
            false
        }
    }

    /// Number of times [`SampleTicker::ready`] returned `true`.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The configured sampling period.
    pub fn period(&self) -> Duration {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_clamps_only_absurd_requests() {
        let (jobs, warning) = effective_jobs(1);
        assert_eq!(jobs, 1);
        assert!(warning.is_none());
        let (jobs, warning) = effective_jobs(1_000_000);
        assert!(jobs < 1_000_000);
        assert!(warning.unwrap().contains("clamping"));
    }

    #[test]
    fn unlimited_always_passes() {
        let mut l = Limits::none();
        assert!(l.is_unlimited());
        for _ in 0..10 * POLL_STRIDE {
            assert_eq!(l.check(), Ok(()));
        }
        assert_eq!(l.check_now(), Ok(()));
    }

    #[test]
    fn cancellation_is_seen_on_the_next_poll() {
        let token = CancellationToken::new();
        let mut l = Limits::with_token(&token);
        assert_eq!(l.check(), Ok(()));
        token.cancel();
        assert_eq!(l.check(), Err(Stop::Cancelled));
        assert_eq!(l.check_now(), Err(Stop::Cancelled));
        // All clones see it.
        let mut l2 = Limits::with_token(&token);
        assert_eq!(l2.check(), Err(Stop::Cancelled));
    }

    #[test]
    fn deadline_fires_within_a_stride() {
        let mut l = Limits::none().with_deadline(Instant::now());
        let fired = (0..=POLL_STRIDE).any(|_| l.check() == Err(Stop::Timeout));
        assert!(fired, "an expired deadline must fire within one stride");
        // And immediately via the unstrided variant.
        let mut l = Limits::none().with_deadline(Instant::now());
        assert_eq!(l.check_now(), Err(Stop::Timeout));
    }

    #[test]
    fn future_deadline_passes() {
        let mut l = Limits::none().with_timeout(Some(Duration::from_secs(3600)));
        for _ in 0..3 * POLL_STRIDE {
            assert_eq!(l.check(), Ok(()));
        }
        assert_eq!(l.check_now(), Ok(()));
    }

    #[test]
    fn either_layered_token_cancels() {
        let outer = CancellationToken::new();
        let inner = CancellationToken::new();
        // Layered on top of an existing token: either flag trips.
        let mut l = Limits::with_token(&outer).also_token(&inner);
        assert!(!l.is_unlimited());
        assert_eq!(l.check(), Ok(()));
        inner.cancel();
        assert_eq!(l.check(), Err(Stop::Cancelled));
        assert_eq!(l.check_now(), Err(Stop::Cancelled));
        let mut l2 = Limits::with_token(&outer).also_token(&CancellationToken::new());
        outer.cancel();
        assert_eq!(l2.check(), Err(Stop::Cancelled));
        // Layered onto empty limits: fills the primary slot.
        let solo = CancellationToken::new();
        let mut l3 = Limits::none().also_token(&solo);
        assert_eq!(l3.check(), Ok(()));
        solo.cancel();
        assert_eq!(l3.check_now(), Err(Stop::Cancelled));
    }

    #[test]
    fn cancellation_precedes_timeout() {
        let token = CancellationToken::new();
        token.cancel();
        let mut l = Limits::with_token(&token).with_deadline(Instant::now());
        assert_eq!(l.check_now(), Err(Stop::Cancelled));
    }

    #[test]
    fn progress_counter_is_shared() {
        let c = ProgressCounter::new();
        let c2 = c.clone();
        c.bump();
        c.bump();
        assert_eq!(c2.get(), 2);
    }

    #[test]
    fn polls_are_counted_per_value() {
        let mut l = Limits::none();
        assert_eq!(l.polls(), 0);
        for _ in 0..5 {
            let _ = l.check();
        }
        let _ = l.check_now();
        assert_eq!(l.polls(), 6);
        // Clones start from the clone point's tally, independently.
        let mut l2 = l.clone();
        let _ = l2.check();
        assert_eq!(l.polls(), 6);
        assert_eq!(l2.polls(), 7);
    }

    #[test]
    fn stop_reasons() {
        assert_eq!(Stop::Cancelled.to_string(), "cancelled");
        assert_eq!(Stop::Timeout.to_string(), "timeout");
    }

    #[test]
    fn steal_queues_deliver_every_chunk_exactly_once() {
        let stop = CancellationToken::new();
        let chunks: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![0], vec![1], vec![2]],
            vec![vec![3]],
            vec![], // worker 2 owns nothing: it must live off stealing
        ];
        let q = StealQueues::new(chunks, &stop);
        assert_eq!(q.workers(), 3);
        let mut seen: Vec<u32> = Vec::new();
        let mut stolen = 0usize;
        // Drain round-robin so stealing actually happens.
        loop {
            let mut any = false;
            for w in 0..3 {
                if let Some((chunk, was_stolen)) = q.next_chunk(w) {
                    seen.extend(chunk);
                    stolen += usize::from(was_stolen);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(stolen >= 1, "the workless worker must have stolen");
    }

    #[test]
    fn steal_queues_own_pops_front_steals_take_back() {
        let stop = CancellationToken::new();
        let q = StealQueues::new(vec![vec![vec![1], vec![2], vec![3]], vec![]], &stop);
        // The owner sweeps in order; the thief takes from the far end,
        // so they never contend on the same chunk.
        assert_eq!(q.next_chunk(1), Some((vec![3], true)));
        assert_eq!(q.next_chunk(0), Some((vec![1], false)));
        assert_eq!(q.next_chunk(0), Some((vec![2], false)));
        assert_eq!(q.next_chunk(0), None);
    }

    #[test]
    fn steal_queues_observe_cancellation_mid_steal() {
        let stop = CancellationToken::new();
        let q = StealQueues::new(vec![vec![vec![1], vec![2]], vec![]], &stop);
        assert!(q.next_chunk(0).is_some());
        stop.cancel();
        // Both an owner pop and a would-be steal stop immediately,
        // abandoning the undelivered chunk.
        assert_eq!(q.next_chunk(0), None);
        assert_eq!(q.next_chunk(1), None);
    }
}
