//! The method is sound but *incomplete* (paper Sec. 6): here is a pair
//! of equivalent circuits it cannot prove — a binary counter against a
//! one-hot ring counter with the same output — because no internal signal
//! of one is sequentially equivalent to any signal of the other. Exact
//! traversal (complete, but state-space-bound) proves the pair easily at
//! this size.
//!
//! ```sh
//! cargo run --release --example incompleteness
//! ```

use sec::core::{Checker, OptionsBuilder, Verdict};
use sec::gen::counter_pair_onehot;
use sec::traversal::{check_equivalence, TraversalOptions, TraversalOutcome};

fn main() {
    let (bin, ring) = counter_pair_onehot(3);
    println!(
        "binary counter: {} regs; one-hot ring: {} regs; same output\n",
        bin.num_latches(),
        ring.num_latches()
    );

    // bmc_depth 0: report the raw incompleteness, don't try to refute.
    let opts = OptionsBuilder::new().bmc_depth(0).build();
    let r = Checker::new(&bin, &ring, opts).unwrap().run();
    match &r.verdict {
        Verdict::Unknown(reason) => {
            println!("signal correspondence: UNKNOWN — {reason}");
            println!(
                "  (final relation has {} classes but none pairs the outputs;\n\
                 \x20  eqs = {:.0}%: no cross-circuit signal equivalences exist)",
                r.stats.classes, r.stats.eqs_percent
            );
        }
        other => println!("unexpected verdict: {other:?}"),
    }

    let (out, stats) = check_equivalence(&bin, &ring, &TraversalOptions::default()).unwrap();
    match out {
        TraversalOutcome::Equivalent => println!(
            "\nsymbolic traversal:   EQUIVALENT after {} image steps in {:?}\n\
             — the complete method settles what the incomplete one cannot,\n\
             as long as the state space stays tractable",
            stats.iterations, stats.time
        ),
        other => println!("unexpected traversal outcome: {other:?}"),
    }
}
