//! The paper's Fig. 2 scenario, reconstructed: a circuit and its
//! forward-retimed version, proven equivalent by discovering the signal
//! correspondence relation `{{f1}, {f2}, {f3, f6}, {f4, f7}, {f5}}`-style
//! classes — internal signals of the two circuits that always carry the
//! same value.
//!
//! ```sh
//! cargo run --release --example paper_example
//! ```

use sec::core::{Backend, Checker, OptionsBuilder, Verdict};
use sec::netlist::Aig;
use sec::sim::{first_output_mismatch, Trace};

fn main() {
    // Specification (left circuit): a two-stage shift register feeding an
    // OR, masked by the input:
    //   v1' = x; v2' = v1; v3 = v1 ∨ v2; output v4 = v3 ∧ x.
    let mut spec = Aig::new();
    let x = spec.add_input("x").lit();
    let v1 = spec.add_latch(false);
    let v2 = spec.add_latch(false);
    spec.set_latch_next(v1, x);
    spec.set_latch_next(v2, v1.lit());
    let v3 = spec.or(v1.lit(), v2.lit());
    let v4 = spec.and(v3, x);
    spec.add_output(v4, "out");

    // Implementation (right circuit): the OR has been retimed forward —
    // a register v6 now latches x ∨ v1 directly:
    //   w1' = x; v6' = x ∨ w1; output v7 = v6 ∧ x.
    let mut imp = Aig::new();
    let x = imp.add_input("x").lit();
    let w1 = imp.add_latch(false);
    imp.set_latch_next(w1, x);
    let v6 = imp.add_latch(false);
    let pre = imp.or(x, w1.lit());
    imp.set_latch_next(v6, pre);
    let v7 = imp.and(v6.lit(), x);
    imp.add_output(v7, "out");

    println!("-- sanity: lockstep simulation over 1000 random cycles --");
    let t = Trace::random(1, 1000, 7);
    assert_eq!(first_output_mismatch(&spec, &imp, &t), None);
    println!("   outputs agree on every cycle\n");

    for backend in [Backend::Bdd, Backend::Sat] {
        let opts = OptionsBuilder::new().backend(backend).build();
        let r = Checker::new(&spec, &imp, opts).unwrap().run();
        println!("-- {backend:?} backend --");
        println!(
            "   verdict: {:?}",
            match &r.verdict {
                Verdict::Equivalent => "Equivalent",
                _ => "unexpected!",
            }
        );
        println!(
            "   {} iterations to the greatest fixed point, {} classes over {} signals,",
            r.stats.iterations, r.stats.classes, r.stats.signals
        );
        println!(
            "   {:.0}% of specification signals have an implementation partner",
            r.stats.eqs_percent
        );
        println!("   (v3 ≡ v6 and v4 ≡ v7 — the classes the paper's example reports)\n");
        assert_eq!(r.verdict, Verdict::Equivalent);
    }
}
