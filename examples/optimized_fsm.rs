//! Effect of logic optimization on the surviving internal equivalences:
//! the paper reports 85% of specification signals keep an implementation
//! partner after retiming alone, dropping to 54% once `script.rugged`
//! restructures the logic. This example reproduces that contrast on a
//! generated controller.
//!
//! ```sh
//! cargo run --release --example optimized_fsm
//! ```

use sec::core::{Checker, Options, Verdict};
use sec::gen::random_fsm;
use sec::synth::{pipeline, PipelineOptions};

fn main() {
    let spec = random_fsm(40, 2, 6, 2024);
    println!(
        "controller: {} states encoded in {} registers, {} gates\n",
        40,
        spec.num_latches(),
        spec.num_ands()
    );

    let aggressive = PipelineOptions {
        rewrite_probability: 0.5,
        unshare_probability: 0.6,
        ..PipelineOptions::default()
    };
    for (name, po) in [
        ("retiming only            ", PipelineOptions::retime_only()),
        ("retiming + light rewrite ", PipelineOptions::default()),
        ("retiming + heavy rewrite ", aggressive),
    ] {
        let imp = pipeline(&spec, &po, 5);
        let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
        assert_eq!(r.verdict, Verdict::Equivalent);
        println!(
            "{name}: eqs = {:>3.0}%   ({} gates, {} regs, {} iterations, {:?})",
            r.stats.eqs_percent,
            imp.num_ands(),
            imp.num_latches(),
            r.stats.iterations,
            r.stats.time
        );
    }
    println!(
        "\nheavier restructuring destroys internal matches (the paper's 85% → 54%)\n\
         yet the method still proves equivalence from whatever survives."
    );
}
