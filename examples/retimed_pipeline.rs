//! Signal correspondence vs. symbolic traversal on a deep-state-space
//! circuit — the paper's headline comparison (its s838 row: a 32-bit
//! counter that no traversal can finish, verified in seconds by the
//! proposed method).
//!
//! ```sh
//! cargo run --release --example retimed_pipeline
//! ```

use sec::core::{Checker, Options, Verdict};
use sec::gen::{counter, CounterKind};
use sec::synth::{pipeline, PipelineOptions};
use sec::traversal::{check_equivalence, TraversalOptions, TraversalOutcome};
use std::time::Duration;

fn main() {
    // 20-bit counter: about a million reachable states, one per clock
    // tick — breadth-first traversal needs ~2^20 image computations.
    let spec = counter(20, CounterKind::Binary);
    let imp = pipeline(&spec, &PipelineOptions::retime_only(), 3);
    println!(
        "spec {} regs / impl {} regs, state space 2^{}",
        spec.num_latches(),
        imp.num_latches(),
        spec.num_latches()
    );

    println!("\n-- proposed method (signal correspondence) --");
    let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    println!(
        "   {:?} in {:?} ({} iterations, {} peak BDD nodes)",
        match &r.verdict {
            Verdict::Equivalent => "Equivalent",
            _ => "unexpected",
        },
        r.stats.time,
        r.stats.iterations,
        r.stats.peak_bdd_nodes
    );
    assert_eq!(r.verdict, Verdict::Equivalent);

    println!("\n-- baseline: symbolic traversal (10 s budget) --");
    let opts = TraversalOptions {
        timeout: Some(Duration::from_secs(10)),
        ..TraversalOptions::default()
    };
    let (out, stats) = check_equivalence(&spec, &imp, &opts).unwrap();
    match out {
        TraversalOutcome::ResourceOut(why) => println!(
            "   gave up after {} image steps ({why}) — exactly the paper's point",
            stats.iterations
        ),
        TraversalOutcome::Equivalent => println!(
            "   finished after {} image steps in {:?} (raise the width to watch it drown)",
            stats.iterations, stats.time
        ),
        TraversalOutcome::Inequivalent(_) => unreachable!("circuits are equivalent"),
    }
}
