//! Racing all four engines: no single method dominates, so the
//! portfolio runs signal correspondence (BDD and SAT backends), BMC and
//! exact traversal in parallel and takes the first *definitive* answer.
//! Three instances with three different winners:
//!
//! 1. a retimed pipeline — correspondence territory;
//! 2. the binary/one-hot incompleteness pair — only traversal proves it;
//! 3. a mutated (inequivalent) circuit — BMC finds the counterexample.
//!
//! ```sh
//! cargo run --release --example portfolio
//! ```

use sec::core::Verdict;
use sec::gen::{counter, counter_pair_onehot, CounterKind};
use sec::portfolio::{self, PortfolioOptions, ProgressEvent};
use sec::synth::{mutate_detectable, pipeline, PipelineOptions};
use std::time::Duration;

fn race(label: &str, spec: &sec::netlist::Aig, imp: &sec::netlist::Aig) {
    println!("=== {label} ===");
    let opts = PortfolioOptions {
        timeout: Some(Duration::from_secs(60)),
        ..PortfolioOptions::default()
    };
    let r = portfolio::run_with_events(spec, imp, &opts, |ev| match ev {
        ProgressEvent::Started { engine, at } => {
            println!("  [{:>8.3}s] {engine} started", at.as_secs_f64())
        }
        ProgressEvent::Finished {
            engine,
            verdict,
            at,
            ..
        } => println!(
            "  [{:>8.3}s] {engine} finished: {verdict}",
            at.as_secs_f64()
        ),
        ProgressEvent::Cancelling { winner, at } => println!(
            "  [{:>8.3}s] {winner} wins — cancelling the others",
            at.as_secs_f64()
        ),
        _ => {}
    })
    .expect("interfaces match");
    let verdict = match &r.verdict {
        Verdict::Equivalent => "EQUIVALENT".to_string(),
        Verdict::Inequivalent(t) => format!("INEQUIVALENT ({}-frame counterexample)", t.len()),
        Verdict::Unknown(reason) => format!("UNKNOWN — {reason}"),
        other => format!("{other:?}"),
    };
    match r.winner {
        Some(w) => println!("  {verdict}, won by {w} in {:.3}s\n", r.time.as_secs_f64()),
        None => println!("  {verdict}\n"),
    }
}

fn main() {
    let spec = counter(10, CounterKind::Binary);
    let imp = pipeline(&spec, &PipelineOptions::default(), 5);
    race("retimed pipeline (correspondence wins)", &spec, &imp);

    let (bin, ring) = counter_pair_onehot(5);
    race("binary vs one-hot (only traversal proves it)", &bin, &ring);

    let spec = counter(8, CounterKind::Binary);
    let (mutant, m) = mutate_detectable(&spec, 7, 64, 16).expect("mutation found");
    println!("injected fault: {m:?}");
    race("mutated circuit (BMC refutes it)", &spec, &mutant);
}
