//! Signal correspondence as a model checker: a safety property "this
//! output is 1 on every reachable state" is sequential equivalence
//! against the constant-true circuit, so the same sound-but-incomplete
//! machinery proves invariants — the lineage through which the paper's
//! method entered modern strengthened-induction model checkers.
//!
//! ```sh
//! cargo run --release --example safety_property
//! ```

use sec::core::{prove_invariants, Options, Verdict};
use sec::netlist::{Aig, Lit};

/// An `n`-stage ring counter with a one-hotness monitor output, and an
/// optional injected bug (two tokens in the ring).
fn ring_with_monitor(n: usize, broken: bool) -> Aig {
    let mut aig = Aig::new();
    let regs: Vec<_> = (0..n)
        .map(|i| aig.add_latch(i == 0 || (broken && i == n / 2)))
        .collect();
    for i in 0..n {
        let prev = regs[(i + n - 1) % n].lit();
        aig.set_latch_next(regs[i], prev);
    }
    let mut terms = Vec::new();
    for i in 0..n {
        let cube: Vec<Lit> = regs
            .iter()
            .enumerate()
            .map(|(j, r)| r.lit().complement_if(j != i))
            .collect();
        let t = aig.and_many(&cube);
        terms.push(t);
    }
    let onehot = aig.or_many(&terms);
    aig.add_output(onehot, "exactly_one_token");
    aig
}

fn main() {
    println!("-- property: the ring always holds exactly one token --");
    let good = ring_with_monitor(8, false);
    let r = prove_invariants(&good, Options::default()).unwrap();
    match &r.verdict {
        Verdict::Equivalent => println!(
            "   PROVEN in {:?} ({} iterations, no state enumeration)",
            r.stats.time, r.stats.iterations
        ),
        other => println!("   unexpected: {other:?}"),
    }

    println!("\n-- same property on a ring initialized with two tokens --");
    let bad = ring_with_monitor(8, true);
    let r = prove_invariants(&bad, Options::default()).unwrap();
    match &r.verdict {
        Verdict::Inequivalent(trace) => {
            let outs = trace.replay(&bad);
            let frame = outs.iter().position(|f| !f[0]).unwrap();
            println!(
                "   REFUTED: monitor falls at frame {frame} of a {}-step witness",
                trace.len()
            );
        }
        other => println!("   unexpected: {other:?}"),
    }
}
