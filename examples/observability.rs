//! Observability in practice: derive statistics from a [`Recorder`],
//! stream NDJSON events, and measure what instrumentation costs when it
//! is off (the default) and on.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use sec::core::{Checker, Options, OptionsBuilder, Verdict};
use sec::gen::{counter, CounterKind};
use sec::obs::{Counter, NdjsonSink, Obs, Recorder, Sink};
use sec::synth::{forward_retime, RetimeOptions};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Median wall-clock (ms) of `n` checker runs under `opts`.
fn median_run_ms(
    spec: &sec::netlist::Aig,
    imp: &sec::netlist::Aig,
    opts: &Options,
    n: usize,
) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            let r = Checker::new(spec, imp, opts.clone()).unwrap().run();
            assert_eq!(r.verdict, Verdict::Equivalent);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let spec = counter(8, CounterKind::Binary);
    let imp = forward_retime(&spec, &RetimeOptions::default(), 1);

    // 1. A recorder turns a run into numbers. The checker tees its own
    //    stats recorder onto the same handle, so what we record here is
    //    exactly what `CheckStats` is derived from.
    let recorder = Recorder::new();
    let opts = OptionsBuilder::sat()
        .obs(Obs::single(recorder.clone()))
        .build();
    let result = Checker::new(&spec, &imp, opts).unwrap().run();
    println!(
        "verdict: {:?} in {} rounds",
        result.verdict, result.stats.iterations
    );
    println!("recorded counters:");
    for (name, v) in recorder.nonzero_counters() {
        println!("  {name:<26} {v}");
    }

    // 2. An NDJSON sink streams the same events as one JSON object per
    //    line — what the CLI's `--trace-json` writes.
    let path = std::env::temp_dir().join("sec-observability-example.ndjson");
    let opts = OptionsBuilder::sat()
        .obs(Obs::single(NdjsonSink::create(&path).expect("temp file")))
        .build();
    Checker::new(&spec, &imp, opts).unwrap().run();
    let trace = std::fs::read_to_string(&path).unwrap();
    println!("\nfirst NDJSON events of {}:", path.display());
    for line in trace.lines().take(3) {
        println!("  {line}");
    }
    println!("  ... {} events total", trace.lines().count());

    // 3. What does a *disabled* emission site cost? One branch: the
    //    `Obs` handle is `None`-checked and nothing else happens.
    let off = Obs::off();
    let iters: u64 = 200_000_000;
    let t0 = Instant::now();
    for i in 0..iters {
        black_box(&off).add(black_box(Counter::SatConflicts), black_box(i & 1));
    }
    let ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    println!("\ndisabled Obs::add: {ns:.2} ns/call over {iters} calls");

    // 4. End-to-end: the same check with the null sink, a recorder, and
    //    recorder + NDJSON. Events are confined to round/frame
    //    boundaries, so the differences drown in run-to-run noise.
    let n = 7;
    let base = OptionsBuilder::sat()
        .retime_rounds(0)
        .bmc_depth(0)
        .sim_refute(false)
        .build();
    let t_off = median_run_ms(&spec, &imp, &base, n);
    let t_rec = median_run_ms(
        &spec,
        &imp,
        &{
            let mut o = base.clone();
            o.obs = Obs::single(Recorder::new());
            o
        },
        n,
    );
    let sinks: Vec<Arc<dyn Sink>> = vec![
        Arc::new(Recorder::new()),
        Arc::new(NdjsonSink::create(&path).expect("temp file")),
    ];
    let t_full = median_run_ms(
        &spec,
        &imp,
        &{
            let mut o = base.clone();
            o.obs = Obs::multi(sinks);
            o
        },
        n,
    );
    println!("median of {n} runs — null sink: {t_off:.2} ms, recorder: {t_rec:.2} ms, recorder+NDJSON: {t_full:.2} ms");
}
