//! Using the correspondence relation to *optimize*: sequential sweeping
//! merges sequentially equivalent signals (the modern descendant of the
//! paper's method, ABC's `scorr`, is exactly this reduction). We take a
//! circuit whose synthesis left duplicated logic across register
//! boundaries, sweep it, and verify the reduction with the checker
//! itself.
//!
//! ```sh
//! cargo run --release --example sequential_sweep
//! ```

use sec::core::{sequential_sweep, Checker, Options, Verdict};
use sec::gen::mixed;
use sec::synth::unshare_latch_cones;

fn main() {
    // A circuit whose latch cones were deliberately un-shared: the same
    // functions computed twice with different structure.
    let clean = mixed(30, 11);
    let bloated = unshare_latch_cones(&clean, 0.9, 4);
    println!(
        "bloated circuit: {} registers, {} AND gates",
        bloated.num_latches(),
        bloated.num_ands()
    );

    let (reduced, stats) = sequential_sweep(&bloated, &Options::default()).unwrap();
    println!(
        "after sweeping:  {} registers, {} AND gates  ({} signals merged, {} iterations)",
        reduced.num_latches(),
        reduced.num_ands(),
        stats.merged,
        stats.iterations
    );
    assert!(reduced.num_ands() <= bloated.num_ands());

    // The optimizer's output is itself verified by the checker.
    let r = Checker::new(&bloated, &reduced, Options::default())
        .unwrap()
        .run();
    println!(
        "verification of the sweep: {:?} in {:?}",
        match &r.verdict {
            Verdict::Equivalent => "Equivalent",
            _ => "unexpected!",
        },
        r.stats.time
    );
    assert_eq!(r.verdict, Verdict::Equivalent);
}
