//! Quickstart: generate a circuit, "synthesize" it (retiming + logic
//! restructuring), and prove sequential equivalence by signal
//! correspondence — no state-space traversal involved.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sec::core::{Checker, Options, Verdict};
use sec::gen::{counter, CounterKind};
use sec::synth::{pipeline, PipelineOptions};

fn main() {
    // The specification: an 8-bit binary counter (2^8 reachable states —
    // small here, but the method's cost does not depend on state depth).
    let spec = counter(8, CounterKind::Binary);
    println!(
        "spec:  {} inputs, {} registers, {} AND gates",
        spec.num_inputs(),
        spec.num_latches(),
        spec.num_ands()
    );

    // The implementation: forward-retimed and logically restructured.
    let imp = pipeline(&spec, &PipelineOptions::default(), 42);
    println!(
        "impl:  {} inputs, {} registers, {} AND gates",
        imp.num_inputs(),
        imp.num_latches(),
        imp.num_ands()
    );

    // Verify. Options::default() is the paper's configuration: BDD
    // backend, random-simulation seeding, functional dependencies, and
    // the lag-1 retiming extension.
    let result = Checker::new(&spec, &imp, Options::default())
        .expect("interfaces match")
        .run();

    match &result.verdict {
        Verdict::Equivalent => println!("verdict: EQUIVALENT (proven)"),
        Verdict::Inequivalent(trace) => {
            println!(
                "verdict: INEQUIVALENT — {}-step counterexample",
                trace.len()
            )
        }
        Verdict::Unknown(reason) => println!("verdict: UNKNOWN ({reason})"),
        other => println!("verdict: {other:?}"),
    }
    println!(
        "stats:  {} fixed-point iterations, {} retiming extensions, \
         {} peak BDD nodes, {:.0}% of spec signals matched, {:?}",
        result.stats.iterations,
        result.stats.retime_invocations,
        result.stats.peak_bdd_nodes,
        result.stats.eqs_percent,
        result.stats.time
    );
    assert_eq!(result.verdict, Verdict::Equivalent);
}
