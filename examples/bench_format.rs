//! Working with ISCAS'89 `.bench` netlists: parse, optimize, verify,
//! write back. Real s-series files can be dropped in the same way —
//! pass a path as the first argument to verify `file.bench` against its
//! pipeline-optimized version.
//!
//! ```sh
//! cargo run --release --example bench_format [circuit.bench]
//! ```

use sec::core::{Checker, Options, Verdict};
use sec::netlist::{parse_bench, write_bench};
use sec::synth::{pipeline, PipelineOptions};

const DEMO: &str = "\
# A 4-bit Johnson counter with enable and a decoded phase output,
# ISCAS'89 style.
INPUT(en)
OUTPUT(phase0)
enb = NOT(en)
nq3 = NOT(q3)
s0 = AND(nq3, en)
h0 = AND(q0, enb)
d0 = OR(s0, h0)
q0 = DFF(d0)
s1 = AND(q0, en)
h1 = AND(q1, enb)
d1 = OR(s1, h1)
q1 = DFF(d1)
s2 = AND(q1, en)
h2 = AND(q2, enb)
d2 = OR(s2, h2)
q2 = DFF(d2)
s3 = AND(q2, en)
h3 = AND(q3, enb)
d3 = OR(s3, h3)
q3 = DFF(d3)
phase0 = NOR(q0, q1, q2, q3)
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => DEMO.to_string(),
    };
    let spec = match parse_bench(&text) {
        Ok(aig) => aig,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed: {} inputs, {} DFFs, {} AND gates, {} outputs",
        spec.num_inputs(),
        spec.num_latches(),
        spec.num_ands(),
        spec.num_outputs()
    );

    let imp = pipeline(&spec, &PipelineOptions::default(), 1998);
    println!(
        "optimized: {} DFFs, {} AND gates",
        imp.num_latches(),
        imp.num_ands()
    );

    let r = Checker::new(&spec, &imp, Options::default()).unwrap().run();
    println!(
        "verdict: {} ({} iterations, {:.0}% signals matched, {:?})",
        match &r.verdict {
            Verdict::Equivalent => "EQUIVALENT".to_string(),
            Verdict::Inequivalent(t) => format!("INEQUIVALENT ({}-step witness)", t.len()),
            Verdict::Unknown(s) => format!("UNKNOWN: {s}"),
            other => format!("{other:?}"),
        },
        r.stats.iterations,
        r.stats.eqs_percent,
        r.stats.time
    );

    // Write the optimized implementation back out.
    let out = write_bench(&imp);
    println!("\n-- optimized netlist ({} lines) --", out.lines().count());
    for line in out.lines().take(12) {
        println!("{line}");
    }
    println!("...");
}
